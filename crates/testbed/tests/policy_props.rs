//! Property-based tests of the pluggable policy layer against live runs
//! (dd-check harness).
//!
//! The policy layer's whole-stack contract (DESIGN "Policy layer"): a
//! policy changes *which queue a request takes and when doorbells ring* —
//! never whether a request survives. Every built-in policy must conserve
//! requests on any scenario, replay bit-for-bit (including stateful
//! policies like fairshare's quota counter), and selecting
//! `PolicySpec::Default` explicitly must be indistinguishable from not
//! touching the policy knob at all. Checked against real simulations, not
//! the unit-level truth tables in `daredevil::policy`.

use daredevil::PolicySpec;
use dd_check::{check, prop_assert};
use simkit::SimDuration;
use testbed::scenario::{MachinePreset, Scenario, StackSpec, TenantKind};
use testbed::RunOutput;

fn random_policy(c: &mut dd_check::Case) -> PolicySpec {
    PolicySpec::ALL[c.u8_in(0, PolicySpec::ALL.len() as u8) as usize]
}

/// Random multi-tenant scenario on the Daredevil stack with a random
/// built-in policy and zero warmup (so conservation is exact over the
/// whole run).
fn random_policy_scenario(c: &mut dd_check::Case) -> Scenario {
    let nr_l = c.u16_in(1, 3);
    let nr_t = c.u16_in(0, 3);
    let cores = c.u16_in(1, 4);
    let seed = c.any_u64();
    let measure_ms = c.u64_in(5, 10);
    let mut s =
        Scenario::multi_tenant_fio(StackSpec::daredevil(), nr_l, nr_t, cores, MachinePreset::Small);
    s.knobs.seed = seed;
    s.knobs.warmup = SimDuration::ZERO;
    s.knobs.measure = SimDuration::from_millis(measure_ms);
    s.knobs.policy = Some(random_policy(c));
    s
}

/// Closed-loop conservation: everything issued is completed or within the
/// tenant's queue depth, and nothing completes twice — no matter which
/// policy routed it.
fn assert_conservation(s: &Scenario, out: &RunOutput) -> Result<(), dd_check::Failure> {
    for t in &out.summary.tenants {
        let spec = &s.tenants[(t.tenant_id - 1) as usize];
        let TenantKind::Fio(job) = &spec.kind else {
            continue;
        };
        prop_assert!(
            t.ios_completed <= t.ios_issued,
            "tenant {}: completed {} > issued {} (double completion)",
            t.tenant_id,
            t.ios_completed,
            t.ios_issued
        );
        let in_flight = t.ios_issued - t.ios_completed;
        prop_assert!(
            in_flight <= job.iodepth as u64,
            "tenant {}: {} in flight > iodepth {} (lost request)",
            t.tenant_id,
            in_flight,
            job.iodepth
        );
    }
    Ok(())
}

/// No request is lost or double-completed under any built-in policy, and
/// every run makes real progress. A policy that routes into a queue
/// nothing drains, or whose doorbell mode never rings, fails here.
#[test]
fn no_request_lost_under_any_policy() {
    check("no_request_lost_under_any_policy", |c| {
        let s = random_policy_scenario(c);
        let out = testbed::run(s.clone());
        assert_conservation(&s, &out)?;
        let total: u64 = out.summary.tenants.iter().map(|t| t.ios_completed).sum();
        prop_assert!(total > 0, "policy run completed nothing");
        Ok(())
    });
}

/// Policy decisions are fully deterministic: the same scenario with the
/// same policy replays bit-for-bit — identical event counts, identical
/// tenant tallies, identical routing-path counters. This is what lets
/// `scripts/verify.sh` hold the ext_policy figure to a byte-exact golden,
/// and it covers stateful policies (fairshare's quota counter) too.
#[test]
fn policy_runs_are_deterministic() {
    check("policy_runs_are_deterministic", |c| {
        let s = random_policy_scenario(c);
        let a = testbed::run(s.clone());
        let b = testbed::run(s);
        prop_assert!(
            a.events_processed == b.events_processed,
            "event counts diverge: {} vs {}",
            a.events_processed,
            b.events_processed
        );
        prop_assert!(
            a.route_stats == b.route_stats,
            "routing counters diverge: {:?} vs {:?}",
            a.route_stats,
            b.route_stats
        );
        for (ta, tb) in a.summary.tenants.iter().zip(b.summary.tenants.iter()) {
            prop_assert!(
                ta.ios_issued == tb.ios_issued && ta.ios_completed == tb.ios_completed,
                "tenant {} tallies diverge: {}/{} vs {}/{}",
                ta.tenant_id,
                ta.ios_issued,
                ta.ios_completed,
                tb.ios_issued,
                tb.ios_completed
            );
        }
        Ok(())
    });
}

/// `PolicySpec::Default` is the identity: asking for the default policy
/// explicitly produces the same run — same events, tallies, latencies,
/// and routing split — as never touching the policy knob. This is the
/// live-run half of the refactor-equivalence argument (the committed
/// figure goldens are the other half): extracting troute/nqreg decisions
/// behind the `Policy` trait changed no behaviour.
#[test]
fn explicit_default_policy_is_identity() {
    check("explicit_default_policy_is_identity", |c| {
        let nr_l = c.u16_in(1, 3);
        let nr_t = c.u16_in(0, 3);
        let cores = c.u16_in(1, 4);
        let seed = c.any_u64();
        let measure = SimDuration::from_millis(c.u64_in(4, 8));
        let mut base =
            Scenario::multi_tenant_fio(StackSpec::daredevil(), nr_l, nr_t, cores, MachinePreset::Small);
        base.knobs.seed = seed;
        base.knobs.warmup = SimDuration::ZERO;
        base.knobs.measure = measure;
        let untouched = testbed::run(base.clone());
        base.knobs.policy = Some(PolicySpec::Default);
        let explicit = testbed::run(base);
        prop_assert!(
            untouched.events_processed == explicit.events_processed,
            "event counts diverge: {} vs {}",
            untouched.events_processed,
            explicit.events_processed
        );
        prop_assert!(
            untouched.route_stats == explicit.route_stats,
            "routing counters diverge: {:?} vs {:?}",
            untouched.route_stats,
            explicit.route_stats
        );
        prop_assert!(
            untouched.summary.stack == explicit.summary.stack,
            "stack name changed by explicit default: {} vs {}",
            untouched.summary.stack,
            explicit.summary.stack
        );
        for (tu, te) in untouched
            .summary
            .tenants
            .iter()
            .zip(explicit.summary.tenants.iter())
        {
            prop_assert!(
                tu.ios_issued == te.ios_issued
                    && tu.ios_completed == te.ios_completed
                    && tu.bytes_completed == te.bytes_completed,
                "tenant {} differs under explicit default policy",
                tu.tenant_id
            );
        }
        prop_assert!(
            (untouched.l_p999_ms() - explicit.l_p999_ms()).abs() < 1e-12,
            "L p99.9 differs under explicit default policy: {} vs {}",
            untouched.l_p999_ms(),
            explicit.l_p999_ms()
        );
        Ok(())
    });
}

/// Each non-default policy is actually *plugged in*: on a fixed busy
/// scenario, every alternative produces a routing split that differs from
/// the default's, and the stack reports the policy's name. Guards against
/// a regression where `--policy` parses but the stack silently keeps
/// `DefaultPolicy`.
#[test]
fn alternative_policies_take_effect() {
    let scenario = |spec: PolicySpec| {
        let mut s =
            Scenario::multi_tenant_fio(StackSpec::daredevil(), 2, 2, 4, MachinePreset::Small);
        s.knobs.seed = 42;
        s.knobs.warmup = SimDuration::ZERO;
        s.knobs.measure = SimDuration::from_millis(10);
        s.knobs.policy = Some(spec);
        s
    };
    let default = testbed::run(scenario(PolicySpec::Default));
    assert_eq!(default.summary.stack, "daredevil");
    for spec in [PolicySpec::Deadline, PolicySpec::SizeClass, PolicySpec::FairShare] {
        let out = testbed::run(scenario(spec));
        assert_eq!(
            out.summary.stack,
            format!("dare-{}", spec.name()),
            "stack name must surface the active policy"
        );
        assert_ne!(
            out.route_stats, default.route_stats,
            "{} produced the default routing split — policy not plugged in",
            spec.name()
        );
        assert!(
            out.route_stats.policy_queries > 0,
            "{} never took the explicit-query path: {:?}",
            spec.name(),
            out.route_stats
        );
    }
}
