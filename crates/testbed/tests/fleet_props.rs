//! Property-based tests of the fleet layer (dd-check harness).
//!
//! The fleet contract (DESIGN "Fleet layer"): a [`FleetSpec`] is a pure
//! description — expansion, placement, per-host seeding, and the open-loop
//! arrival schedules are all derived deterministically from the spec — so
//! a fleet run's [`testbed::FleetOutput::digest`] must be identical across
//! re-runs, across host execution orders, and across warm vs cold
//! [`RunArena`]s (the `--jobs 1` vs `--jobs N` witness). These properties
//! check that against live simulations, plus the statistical contract of
//! the Zipfian sampler the population model leans on and the
//! capacity-stability claim behind the 10k-tenant scale point.

use dd_check::{check, prop_assert, prop_assert_eq};
use simkit::{SimDuration, SimRng, Zipfian};
use testbed::fleet::{FleetSpec, PlacementPolicy, TenantPopulation};
use testbed::scenario::{MachinePreset, StackSpec};
use testbed::{FleetOutput, RunArena};

/// Random-but-small fleet spec: 2–4 hosts, up to a few hundred tenants,
/// every placement policy, short windows — cheap enough for a dd-check
/// case corpus while exercising the same expansion paths as 10k tenants.
fn random_fleet(c: &mut dd_check::Case) -> FleetSpec {
    let hosts = c.u16_in(2, 4);
    let tenants = c.u32_in(hosts as u32 * 8, 400);
    let stack = match c.u8_in(0, 4) {
        0 => StackSpec::vanilla(),
        1 => StackSpec::blk_switch(),
        2 => StackSpec::overprov(),
        _ => StackSpec::daredevil(),
    };
    let mut pop = TenantPopulation::zipfian(tenants, 2_000.0 + c.u64_in(0, 10_000) as f64);
    pop.theta = 0.5 + c.u64_in(0, 45) as f64 / 100.0;
    let mut f = FleetSpec::new("prop", hosts, MachinePreset::Small, stack, pop);
    f.placement = match c.u8_in(0, 3) {
        0 => PlacementPolicy::RoundRobin,
        1 => PlacementPolicy::Hash,
        _ => PlacementPolicy::HotSpot {
            hot_hosts: 1,
            hot_fraction: 0.1,
        },
    };
    f.knobs.seed = c.any_u64();
    f.knobs.warmup = SimDuration::from_millis(1);
    f.knobs.measure = SimDuration::from_millis(c.u64_in(4, 8));
    f
}

/// The Zipfian sampler is deterministic per seed and its empirical rank
/// frequencies track the analytic `1/(r+1)^θ / ζ(n,θ)` weights: the head
/// ranks appear with their predicted mass (within sampling tolerance) and
/// popularity is monotone down the head of the distribution.
#[test]
fn zipfian_rank_frequencies_match_theta() {
    check("zipfian_rank_frequencies_match_theta", |c| {
        let n = c.u64_in(50, 2_000);
        let theta = 0.5 + c.u64_in(0, 45) as f64 / 100.0;
        let seed = c.any_u64();
        let z = Zipfian::new(n, theta);

        // Determinism: the same seed replays the same sample stream.
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..64 {
            prop_assert_eq!(z.sample(&mut a), z.sample(&mut b), "seeded replay diverged");
        }

        // Frequencies: counts of the head ranks vs their analytic shares.
        let samples = 60_000u64;
        let mut rng = SimRng::new(seed ^ 0xDECAF);
        let head = 8usize.min(n as usize);
        let mut counts = vec![0u64; head];
        for _ in 0..samples {
            let r = z.sample(&mut rng);
            prop_assert!(r < n, "sample {} out of domain {}", r, n);
            if (r as usize) < head {
                counts[r as usize] += 1;
            }
        }
        let zeta: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        for (r, &cnt) in counts.iter().enumerate() {
            let expect = samples as f64 / ((r + 1) as f64).powf(theta) / zeta;
            let got = cnt as f64;
            // 20 % relative + small absolute slack covers sampling noise
            // on the thinner head ranks across the whole (n, θ) range.
            prop_assert!(
                (got - expect).abs() <= 0.2 * expect + 60.0,
                "rank {} of n={} θ={}: {} samples vs {:.1} expected",
                r,
                n,
                theta,
                cnt,
                expect
            );
        }
        for r in 1..head {
            prop_assert!(
                counts[r - 1] + 60 >= counts[r],
                "rank {} more popular than rank {} (θ={})",
                r,
                r - 1,
                theta
            );
        }
        Ok(())
    });
}

/// A fleet run's digest is a pure function of its spec: re-running the
/// same spec — fresh arenas, warm arenas, hosts executed in reverse order
/// — always produces the same digest. This is the serial-vs-parallel
/// witness behind the `--jobs 1` vs `--jobs N` byte-identity gate.
#[test]
fn fleet_digest_is_deterministic() {
    check("fleet_digest_is_deterministic", |c| {
        let f = random_fleet(c);

        let mut arena = RunArena::new();
        let first = testbed::run_fleet(&f, &mut arena);
        // Same warm arena re-run: recycled capacity must not leak state.
        let second = testbed::run_fleet(&f, &mut arena);
        prop_assert_eq!(
            first.digest(),
            second.digest(),
            "warm-arena re-run changed the digest"
        );

        // Reverse host order on fresh per-host arenas — the execution
        // binding a parallel sweep produces — reassembled in host order.
        let mut hosts: Vec<_> = f.expand().into_iter().enumerate().collect();
        hosts.reverse();
        let mut outs: Vec<_> = hosts
            .into_iter()
            .map(|(i, s)| {
                let mut fresh = RunArena::new();
                (i, testbed::run_in(s, &mut fresh))
            })
            .collect();
        outs.sort_by_key(|(i, _)| *i);
        let reversed = FleetOutput {
            hosts: outs.into_iter().map(|(_, o)| o).collect(),
        };
        prop_assert_eq!(
            first.digest(),
            reversed.digest(),
            "host execution order leaked into the digest"
        );
        prop_assert!(
            first.ios_completed() > 0,
            "fleet completed nothing — load too low to test anything"
        );
        Ok(())
    });
}

/// The 10k-tenant scale point of the paper's fleet figure: one fixed
/// 4-host daredevil fleet at 10 000 tenants runs to the same digest twice
/// (fresh vs warm arena), and no per-I/O slab or event-queue backbone
/// grows between end-of-warmup and end-of-run on any host — allocation
/// reaches steady state during warmup even at fleet scale.
#[test]
fn ten_k_tenants_deterministic_and_capacity_stable() {
    let mut f = FleetSpec::new(
        "10k",
        4,
        MachinePreset::SvM,
        StackSpec::daredevil(),
        TenantPopulation::zipfian(10_000, 20_000.0),
    );
    f.knobs.warmup = SimDuration::from_millis(5);
    f.knobs.measure = SimDuration::from_millis(20);

    let mut arena = RunArena::new();
    let first = testbed::run_fleet(&f, &mut arena);
    let second = testbed::run_fleet(&f, &mut arena);
    assert_eq!(
        first.digest(),
        second.digest(),
        "10k-tenant fleet digest not reproducible"
    );
    assert!(first.ios_completed() > 0, "10k fleet completed nothing");

    for (h, host) in first.hosts.iter().enumerate() {
        assert_eq!(
            host.cap_warmup.io_slots, host.cap_end.io_slots,
            "host {h}: per-I/O slab capacity grew mid-run \
             ({} -> {} slots)",
            host.cap_warmup.io_slots, host.cap_end.io_slots
        );
        assert_eq!(
            host.cap_warmup.events, host.cap_end.events,
            "host {h}: event-queue capacity grew mid-run \
             ({} -> {} slots)",
            host.cap_warmup.events, host.cap_end.events
        );
    }
}
