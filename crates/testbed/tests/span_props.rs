//! Property-based tests of the span-trace pipeline against live runs
//! (dd-check harness).
//!
//! The structured trace API's whole-stack contract (ISSUE 5 / DESIGN
//! "Trace/span model"): for *any* workload with tracing on, stitching the
//! harvested events with `SpanTable` is **total and ordered** — every
//! completed request yields a span whose phase timestamps are monotone in
//! lifecycle order, with no orphan events, and whose consecutive segment
//! durations telescope to the end-to-end latency. These properties are
//! checked here against real simulations across four stacks, not synthetic
//! event streams, so any instrumentation point that records out of order,
//! drops a phase, or mislabels a request fails the suite.

use dd_check::{check, prop_assert, prop_assert_eq};
use simkit::{Phase, SimDuration, SimTime, TraceSpec, MASK_ALL};
use testbed::scenario::{MachinePreset, Scenario, StackSpec};
use testbed::RunOutput;

use dd_metrics::SpanTable;

/// Lifecycle phases every completed request must traverse, in order
/// (everything except the free-form `debug` marker).
const LIFECYCLE: [Phase; 9] = [
    Phase::Submit,
    Phase::Routed { outlier: false },
    Phase::NsqEnqueue,
    Phase::DoorbellRing,
    Phase::DeviceFetch,
    Phase::FlashDone,
    Phase::CqePosted,
    Phase::IrqFire,
    Phase::Complete,
];

fn random_run(c: &mut dd_check::Case) -> RunOutput {
    let stack = match c.u8_in(0, 4) {
        0 => StackSpec::vanilla(),
        1 => StackSpec::blk_switch(),
        2 => StackSpec::overprov(),
        _ => StackSpec::daredevil(),
    };
    let nr_l = c.u16_in(1, 3);
    let nr_t = c.u16_in(0, 4);
    let cores = c.u16_in(1, 4);
    let seed = c.any_u64();
    let measure_ms = c.u64_in(3, 8);
    let mut s = Scenario::multi_tenant_fio(stack, nr_l, nr_t, cores, MachinePreset::Small);
    s.knobs.seed = seed;
    s.knobs.warmup = SimDuration::from_millis(1);
    s.knobs.measure = SimDuration::from_millis(measure_ms);
    s.knobs.trace = Some(TraceSpec {
        cap: 1 << 18,
        mask: MASK_ALL,
    });
    testbed::run(s)
}

/// Span stitching is total and ordered for live workloads: completed
/// spans carry every lifecycle phase, timestamps are monotone in
/// lifecycle order, no span is an orphan, the per-span segments
/// telescope exactly to the end-to-end duration, and the span count
/// agrees with the stack's own completion counter.
#[test]
fn spans_are_total_and_ordered_on_live_runs() {
    check("spans_are_total_and_ordered_on_live_runs", |c| {
        let out = random_run(c);
        prop_assert_eq!(out.trace_dropped, 0, "ring sized to never wrap here");
        prop_assert!(!out.trace.is_empty(), "tracing was on; events expected");
        let table = SpanTable::build(&out.trace);
        prop_assert_eq!(table.orphans(), 0, "every event belongs to a submitted rq");
        prop_assert_eq!(table.skipped(), 0, "no debug/queue-scoped events emitted");
        let mut completed = 0u64;
        for span in table.spans() {
            if !span.is_complete() {
                // In-flight at simulation stop: must still have a Submit
                // (no orphans) — checked above via table.orphans().
                continue;
            }
            completed += 1;
            // Total and ordered: all nine phases, monotone timestamps.
            let mut last = SimTime::ZERO;
            for phase in LIFECYCLE {
                let Some(t) = span.at(phase) else {
                    return Err(dd_check::Failure::new(format!(
                        "rq {} completed without phase {}",
                        span.rq,
                        phase.name()
                    )));
                };
                prop_assert!(
                    t >= last,
                    "rq {}: phase {} at {:?} precedes previous phase at {:?}",
                    span.rq,
                    phase.name(),
                    t,
                    last
                );
                last = t;
            }
            // Segments telescope exactly to the end-to-end duration.
            let total = span.total().expect("complete span has a total");
            let mut sum = SimDuration::ZERO;
            for pair in LIFECYCLE.windows(2) {
                sum += span.segment(pair[0], pair[1]).expect("adjacent phases traced");
            }
            prop_assert_eq!(
                sum,
                total,
                "rq {}: segment durations must sum to end-to-end",
                span.rq
            );
        }
        prop_assert!(completed > 0, "workload must complete requests");
        prop_assert_eq!(
            completed,
            out.stack_stats.completed_rqs,
            "one complete span per completed request"
        );
        Ok(())
    });
}

/// The span view agrees with the measurement layer: the mean of in-window
/// span totals matches the per-class latency histogram's mean within the
/// histogram's bucketing error. (The workloads here use single-extent
/// requests, so spans and bios are 1:1.)
#[test]
fn span_totals_match_summary_latency() {
    check("span_totals_match_summary_latency", |c| {
        let out = random_run(c);
        let table = SpanTable::build(&out.trace);
        let window_start = SimTime::from_millis(1);
        for (class, sla) in [("L", simkit::Sla::L), ("T", simkit::Sla::T)] {
            let hist = &out.summary.class(class).latency;
            if hist.is_empty() {
                continue;
            }
            let stats = table.segment_stats(Phase::Submit, Phase::Complete, |s| {
                s.sla == sla && s.completed_at().is_some_and(|t| t >= window_start)
            });
            // The summary only sees completions *delivered* before the run
            // stopped; spans also cover those signalled at the very end.
            prop_assert!(
                stats.count >= hist.count(),
                "{class}: spans ({}) must cover every summary completion ({})",
                stats.count,
                hist.count()
            );
            let span_mean_ms = stats.avg_ms();
            let hist_mean_ms = hist.mean().as_millis_f64();
            let rel = (span_mean_ms - hist_mean_ms).abs() / hist_mean_ms.max(1e-9);
            // Log-bucketed histogram error is ≤ 0.8 %; the end-of-run
            // coverage difference adds a little more on tiny windows.
            prop_assert!(
                rel < 0.05,
                "{class}: span mean {span_mean_ms} ms vs histogram mean {hist_mean_ms} ms"
            );
        }
        Ok(())
    });
}
