//! Property-based tests of fault injection and recovery against live runs
//! (dd-check harness).
//!
//! The fault subsystem's whole-stack contract (ISSUE 6 / DESIGN "Fault
//! model and recovery"): under *any* deterministic fault schedule — die
//! latency spikes, lost IRQ raises, stalled NSQ fetch — every stack keeps
//! making progress and **no request is ever lost or double-completed**.
//! These properties are checked against real simulations across all four
//! stacks and every fault-class combination, not synthetic schedules, so
//! a recovery path that drops a command, replays a completion, or wedges
//! a queue fails the suite.

use dd_check::{check, prop_assert};
use simkit::{FaultClasses, FaultSpec, SimDuration};
use testbed::scenario::{MachinePreset, Scenario, StackSpec, TenantKind};
use testbed::RunOutput;

/// Builds a random multi-tenant scenario with at least one fault class
/// enabled and **zero warmup**, so the measurement window covers the whole
/// run: `ios_issued` counts every materialised bio and `ios_completed`
/// every delivered completion, making exact conservation checkable.
fn random_fault_scenario(c: &mut dd_check::Case) -> Scenario {
    let stack = match c.u8_in(0, 4) {
        0 => StackSpec::vanilla(),
        1 => StackSpec::blk_switch(),
        2 => StackSpec::overprov(),
        _ => StackSpec::daredevil(),
    };
    let nr_l = c.u16_in(1, 3);
    let nr_t = c.u16_in(0, 3);
    let cores = c.u16_in(1, 4);
    let seed = c.any_u64();
    let measure_ms = c.u64_in(6, 12);
    let classes = FaultClasses {
        die_spikes: c.u8_in(0, 2) == 1,
        irq_loss: c.u8_in(0, 2) == 1,
        nsq_stalls: c.u8_in(0, 2) == 1,
    };
    // At least one class on, else the run is a plain clean run.
    let classes = if classes.any() {
        classes
    } else {
        FaultClasses::ALL
    };
    let spec = FaultSpec::aggressive(classes, c.any_u64());
    let mut s = Scenario::multi_tenant_fio(stack, nr_l, nr_t, cores, MachinePreset::Small);
    s.knobs.seed = seed;
    s.knobs.warmup = SimDuration::ZERO;
    s.knobs.measure = SimDuration::from_millis(measure_ms);
    s.knobs.faults = Some(spec);
    s.sample_width = SimDuration::from_millis(measure_ms) / 8;
    s
}

/// Per-tenant conservation check: with zero warmup, everything issued is
/// either completed or still in flight, and a closed-loop FIO tenant can
/// never have more than `iodepth` bios in flight. A lost request shows up
/// as `issued - completed > iodepth` (the tenant's loop wedges one slot
/// short forever); a double-completion shows up as `completed > issued`.
fn assert_conservation(s: &Scenario, out: &RunOutput) -> Result<(), dd_check::Failure> {
    for t in &out.summary.tenants {
        let spec = &s.tenants[(t.tenant_id - 1) as usize];
        let TenantKind::Fio(job) = &spec.kind else {
            continue;
        };
        prop_assert!(
            t.ios_completed <= t.ios_issued,
            "tenant {}: completed {} > issued {} (double completion)",
            t.tenant_id,
            t.ios_completed,
            t.ios_issued
        );
        let in_flight = t.ios_issued - t.ios_completed;
        prop_assert!(
            in_flight <= job.iodepth as u64,
            "tenant {}: issued {} - completed {} = {} in flight > iodepth {} (lost request)",
            t.tenant_id,
            t.ios_issued,
            t.ios_completed,
            in_flight,
            job.iodepth
        );
    }
    Ok(())
}

/// No request is ever lost or double-completed under any fault schedule,
/// for any stack: per-tenant conservation holds exactly, the stack-level
/// counters agree, and the run keeps completing I/O all the way to the
/// end of the window (no silent hang ridden out by the simulator).
#[test]
fn no_request_lost_under_faults() {
    check("no_request_lost_under_faults", |c| {
        let s = random_fault_scenario(c);
        let out = testbed::run(s.clone());
        assert_conservation(&s, &out)?;
        prop_assert!(
            out.stack_stats.completed_rqs <= out.stack_stats.submitted_rqs,
            "stack completed {} rqs but only submitted {}",
            out.stack_stats.completed_rqs,
            out.stack_stats.submitted_rqs
        );
        // Progress to the end: the L class (always populated) must still
        // be completing I/O in the last quarter of the run. A lost IRQ or
        // a wedged NSQ without recovery hangs QD1 L-tenants permanently.
        let l = out.series.get("L").expect("L series exists");
        let buckets = l.bytes.buckets();
        prop_assert!(buckets.len() >= 4, "window too short to judge progress");
        let tail: u64 = buckets[buckets.len() - buckets.len() / 4..]
            .iter()
            .map(|b| b.count)
            .sum();
        prop_assert!(
            tail > 0,
            "no L-class completions in the last quarter of the run (hang)"
        );
        // Something must have completed at all.
        let total: u64 = out.summary.tenants.iter().map(|t| t.ios_completed).sum();
        prop_assert!(total > 0, "faulted run completed nothing");
        Ok(())
    });
}

/// Fault schedules and recovery are fully deterministic: the same scenario
/// (same workload seed, same fault seed) replays bit-for-bit — identical
/// event count, identical per-tenant I/O tallies, identical injection and
/// recovery counters.
#[test]
fn fault_runs_are_deterministic() {
    check("fault_runs_are_deterministic", |c| {
        let s = random_fault_scenario(c);
        let a = testbed::run(s.clone());
        let b = testbed::run(s);
        prop_assert!(
            a.events_processed == b.events_processed,
            "event counts diverge: {} vs {}",
            a.events_processed,
            b.events_processed
        );
        prop_assert!(
            a.fault == b.fault,
            "fault/recovery counters diverge: {:?} vs {:?}",
            a.fault,
            b.fault
        );
        for (ta, tb) in a.summary.tenants.iter().zip(b.summary.tenants.iter()) {
            prop_assert!(
                ta.ios_issued == tb.ios_issued && ta.ios_completed == tb.ios_completed,
                "tenant {} tallies diverge: {}/{} vs {}/{}",
                ta.tenant_id,
                ta.ios_issued,
                ta.ios_completed,
                tb.ios_issued,
                tb.ios_completed
            );
        }
        Ok(())
    });
}

/// An armed-but-empty fault plan is invisible: running with
/// `FaultClasses::NONE` (watchdog armed, zero scheduled events) produces
/// the same workload results as not arming faults at all. The watchdog
/// must never fire a spurious poll on a healthy machine, and the
/// per-hook `enabled()` guards must not perturb device behaviour.
#[test]
fn empty_fault_plan_is_invisible() {
    check("empty_fault_plan_is_invisible", |c| {
        let stack = match c.u8_in(0, 4) {
            0 => StackSpec::vanilla(),
            1 => StackSpec::blk_switch(),
            2 => StackSpec::overprov(),
            _ => StackSpec::daredevil(),
        };
        let nr_l = c.u16_in(1, 3);
        let nr_t = c.u16_in(0, 3);
        let cores = c.u16_in(1, 4);
        let seed = c.any_u64();
        let measure = SimDuration::from_millis(c.u64_in(3, 8));
        let mut base = Scenario::multi_tenant_fio(stack, nr_l, nr_t, cores, MachinePreset::Small);
        base.knobs.seed = seed;
        base.knobs.warmup = SimDuration::from_millis(1);
        base.knobs.measure = measure;
        let clean = testbed::run(base.clone());
        base.knobs.faults = Some(FaultSpec::new(FaultClasses::NONE, c.any_u64()));
        let armed = testbed::run(base);
        prop_assert!(
            armed.fault.total_injected() == 0,
            "NONE plan injected faults: {:?}",
            armed.fault
        );
        prop_assert!(
            armed.fault.polls_fired == 0,
            "watchdog fired {} spurious polls on a healthy run",
            armed.fault.polls_fired
        );
        prop_assert!(
            armed.fault.watchdog_redrives == 0,
            "watchdog redrove {} doorbells on a healthy run",
            armed.fault.watchdog_redrives
        );
        for (tc, ta) in clean.summary.tenants.iter().zip(armed.summary.tenants.iter()) {
            prop_assert!(
                tc.ios_issued == ta.ios_issued
                    && tc.ios_completed == ta.ios_completed
                    && tc.bytes_completed == ta.bytes_completed,
                "tenant {} differs with an empty fault plan armed: {}/{} vs {}/{}",
                tc.tenant_id,
                tc.ios_issued,
                tc.ios_completed,
                ta.ios_issued,
                ta.ios_completed
            );
        }
        prop_assert!(
            (clean.l_p999_ms() - armed.l_p999_ms()).abs() < 1e-12,
            "L p99.9 differs with an empty fault plan armed: {} vs {}",
            clean.l_p999_ms(),
            armed.l_p999_ms()
        );
        Ok(())
    });
}

/// Targeted IRQ-loss recovery: a single QD1 L-tenant whose completion
/// interrupt is silently dropped has *no* other way forward — only the
/// ISR watchdog's polling fallback can rescue it. The run must lose
/// vectors, fire polls, and still complete I/O to the end.
#[test]
fn irq_loss_rescued_by_polling_watchdog() {
    let classes = FaultClasses {
        die_spikes: false,
        irq_loss: true,
        nsq_stalls: false,
    };
    let mut s = Scenario::multi_tenant_fio(StackSpec::vanilla(), 1, 0, 1, MachinePreset::Small);
    s.knobs.seed = 7;
    s.knobs.warmup = SimDuration::ZERO;
    s.knobs.measure = SimDuration::from_millis(20);
    s.knobs.faults = Some(FaultSpec::aggressive(classes, 0xDEAD));
    let out = testbed::run(s.clone());
    assert!(
        out.fault.vectors_lost > 0,
        "schedule should lose at least one raise: {:?}",
        out.fault
    );
    assert!(
        out.fault.polls_fired > 0,
        "watchdog never polled despite lost raises: {:?}",
        out.fault
    );
    assert_conservation(&s, &out).unwrap();
    let t = &out.summary.tenants[0];
    assert!(
        t.ios_completed > 100,
        "QD1 tenant starved: only {} completions in 20 ms",
        t.ios_completed
    );
}

/// All three fault classes engage on a busy machine and the matching
/// recovery counters move: spikes get applied to real dispatches, raises
/// get lost and rescued by polling, stalls engage and the stall watchdog
/// redrives doorbells.
#[test]
fn all_fault_classes_engage() {
    let mut s = Scenario::multi_tenant_fio(StackSpec::daredevil(), 2, 2, 4, MachinePreset::Small);
    s.knobs.seed = 11;
    s.knobs.warmup = SimDuration::ZERO;
    s.knobs.measure = SimDuration::from_millis(20);
    s.knobs.faults = Some(FaultSpec::aggressive(FaultClasses::ALL, 0xBEEF));
    let out = testbed::run(s.clone());
    assert!(out.fault.spikes_applied > 0, "no die spike applied: {:?}", out.fault);
    assert!(out.fault.vectors_lost > 0, "no raise lost: {:?}", out.fault);
    assert!(out.fault.stalls_engaged > 0, "no stall engaged: {:?}", out.fault);
    assert!(out.fault.polls_fired > 0, "no polling fallback fired: {:?}", out.fault);
    assert!(
        out.fault.irq_raised_total > 0,
        "vector raise counter dead: {:?}",
        out.fault
    );
    assert_conservation(&s, &out).unwrap();
}
