//! Property-based tests of Daredevil's routing layer (dd-check harness).
//!
//! DESIGN §7 names the "troute never routes an L-request to a low-priority
//! NSQ" invariant: Algorithm 1's whole point is that latency-sensitive
//! requests — and T-tenants' outlier requests — always land in the
//! high-priority NQGroup, whatever the tenant mix and request history.

use dd_check::{check, prop_assert, prop_assert_eq};

use blkstack::bio::{Bio, BioId, ReqFlags};
use blkstack::nsqlock::NsqLockTable;
use blkstack::{IoPriorityClass, Pid, TaskStruct};
use daredevil::nqreg::divide_priorities;
use daredevil::policy::DefaultPolicy;
use daredevil::{NqReg, Priority, ProxyTable, Troute};
use dd_nvme::{IoOpcode, NamespaceId, NvmeConfig, NvmeDevice, SqId};
use simkit::SimTime;

struct Fixture {
    device: NvmeDevice,
    locks: NsqLockTable,
    proxies: ProxyTable,
    nqreg: NqReg,
    troute: Troute,
    pol: DefaultPolicy,
}

fn fixture(nr_queues: u16) -> Fixture {
    let mut cfg = NvmeConfig::sv_m();
    cfg.nr_sqs = nr_queues;
    cfg.nr_cqs = nr_queues;
    let device = NvmeDevice::new(cfg, 4);
    let locks = NsqLockTable::new(nr_queues);
    let prios = divide_priorities(nr_queues);
    let proxies = ProxyTable::new(
        nr_queues,
        |i| device.cq_of_sq(SqId(i)),
        |i| prios[device.cq_of_sq(SqId(i)).index()],
    );
    let nqreg = NqReg::new(0.8, 4, true, nr_queues, nr_queues, |i| i);
    Fixture {
        device,
        locks,
        proxies,
        nqreg,
        troute: Troute::new(4, 8),
        pol: DefaultPolicy::default(),
    }
}

fn bio(tenant: u64, flags: ReqFlags) -> Bio {
    Bio {
        id: BioId(0),
        tenant: Pid(tenant),
        core: 0,
        nsid: NamespaceId(1),
        op: IoOpcode::Read,
        offset_blocks: 0,
        bytes: 4096,
        flags,
        issued_at: SimTime::ZERO,
    }
}

/// The L-routing invariant: under any sequence of registrations and
/// requests, every bio from an RT-ionice (L) tenant and every outlier
/// (sync/metadata) bio from a T-tenant is routed to a high-priority NSQ;
/// normal T-bios go to the tenant's low-priority default NSQ.
#[test]
fn troute_l_requests_never_low_priority() {
    check("troute_l_requests_never_low_priority", |c| {
        // 4..16 queues (even counts so both NQGroups are non-empty).
        let nr_queues = 2 * c.u16_in(2, 9);
        let mut f = fixture(nr_queues);
        // Register 1..12 tenants with random SLAs on random cores.
        let tenants = c.vec_of(1, 12, |c| {
            let ionice = if c.bool_with(0.5) {
                IoPriorityClass::RealTime
            } else {
                IoPriorityClass::BestEffort
            };
            (ionice, c.u16_in(0, 4))
        });
        for (i, &(ionice, core)) in tenants.iter().enumerate() {
            let task = TaskStruct::new(Pid(i as u64), core, ionice, NamespaceId(1), "p");
            f.troute
                .register(&task, &mut f.pol, &mut f.nqreg, &f.device, &f.locks, &mut f.proxies);
        }
        // Drive a random request stream and check every routing decision.
        let requests = c.vec_of(1, 200, |c| {
            let flags = match c.u8_in(0, 4) {
                0 => ReqFlags::SYNC,
                1 => ReqFlags::META,
                _ => ReqFlags::NONE,
            };
            (c.usize_in(0, 12), flags)
        });
        for (pick, flags) in requests {
            let pid = pick % tenants.len();
            let (ionice, _) = tenants[pid];
            let sq = f.troute.route(
                &bio(pid as u64, flags),
                SimTime::ZERO,
                &mut f.pol,
                &mut f.nqreg,
                &f.device,
                &f.locks,
                &mut f.proxies,
            );
            let target_prio = f.proxies.get(sq).prio;
            if ionice.is_latency_sensitive() {
                // Line 1-2 of Algorithm 1: L-tenants stay on their
                // high-priority default NSQ.
                prop_assert_eq!(
                    target_prio,
                    Priority::High,
                    "L-request routed to low-priority {:?}",
                    sq
                );
                prop_assert_eq!(sq, f.troute.route_of(Pid(pid as u64)).unwrap().default_sq);
            } else if flags.is_outlier() {
                // Line 4-9: outliers always land in the high group,
                // whether via the outlier NSQ or a per-request query.
                prop_assert_eq!(
                    target_prio,
                    Priority::High,
                    "outlier routed to low-priority {:?}",
                    sq
                );
            } else {
                // Line 3: normal T-requests use the (low) default NSQ.
                prop_assert_eq!(sq, f.troute.route_of(Pid(pid as u64)).unwrap().default_sq);
                prop_assert_eq!(target_prio, Priority::Low);
            }
        }
        Ok(())
    });
}

/// Claim accounting balances: after deregistering everybody, every proxy
/// has zero assignments and an empty claimed-core bitmap.
#[test]
fn troute_claims_balance_on_deregister() {
    check("troute_claims_balance_on_deregister", |c| {
        let mut f = fixture(8);
        let n = c.usize_in(1, 16);
        for i in 0..n {
            let ionice = if c.bool_with(0.5) {
                IoPriorityClass::RealTime
            } else {
                IoPriorityClass::BestEffort
            };
            let task = TaskStruct::new(Pid(i as u64), c.u16_in(0, 4), ionice, NamespaceId(1), "p");
            f.troute
                .register(&task, &mut f.pol, &mut f.nqreg, &f.device, &f.locks, &mut f.proxies);
        }
        // Random request traffic (may create outlier NSQ claims)...
        for _ in 0..c.usize_in(0, 100) {
            let pid = c.usize_in(0, n) as u64;
            let flags = if c.bool_with(0.3) {
                ReqFlags::SYNC
            } else {
                ReqFlags::NONE
            };
            f.troute.route(
                &bio(pid, flags),
                SimTime::ZERO,
                &mut f.pol,
                &mut f.nqreg,
                &f.device,
                &f.locks,
                &mut f.proxies,
            );
        }
        // ...then everyone leaves.
        for i in 0..n {
            f.troute.deregister(Pid(i as u64), &mut f.proxies);
        }
        prop_assert!(f.troute.is_empty());
        for p in f.proxies.iter() {
            prop_assert_eq!(p.assignments(), 0, "proxy {:?} leaked assignments", p.sq);
            prop_assert_eq!(p.nr_claimed_cores(), 0, "proxy {:?} leaked core bits", p.sq);
        }
        Ok(())
    });
}

/// Ionice-storm hardening: under priority flapping at syscall cadence
/// (Fig. 14's `ionice` storm, re-registrations every ~10 µs) interleaved
/// with request traffic, every routing decision follows the tenant's
/// *current* SLA — never a stale pre-flip route — and the claim
/// accounting survives arbitrarily many re-registrations.
#[test]
fn troute_never_routes_against_stale_sla_under_flapping() {
    check("troute_never_routes_against_stale_sla_under_flapping", |c| {
        let nr_queues = 2 * c.u16_in(2, 9);
        let mut f = fixture(nr_queues);
        let n = c.usize_in(1, 8);
        // Current SLA per tenant, updated as the storm flips it.
        let mut ionice: Vec<IoPriorityClass> = Vec::new();
        for i in 0..n {
            let io = if c.bool_with(0.5) {
                IoPriorityClass::RealTime
            } else {
                IoPriorityClass::BestEffort
            };
            ionice.push(io);
            let task = TaskStruct::new(Pid(i as u64), c.u16_in(0, 4), io, NamespaceId(1), "p");
            f.troute
                .register(&task, &mut f.pol, &mut f.nqreg, &f.device, &f.locks, &mut f.proxies);
        }
        // A storm of interleaved flips and requests: each step is either an
        // ionice update (the 10 µs flapper firing) or an I/O arriving
        // between two flips.
        for _ in 0..c.usize_in(50, 400) {
            let pid = c.usize_in(0, n);
            if c.bool_with(0.4) {
                // Flip this tenant's SLA.
                let io = if c.bool_with(0.5) {
                    IoPriorityClass::RealTime
                } else {
                    IoPriorityClass::BestEffort
                };
                ionice[pid] = io;
                f.troute.update_ionice(
                    Pid(pid as u64),
                    io,
                    &mut f.pol,
                    &mut f.nqreg,
                    &f.device,
                    &f.locks,
                    &mut f.proxies,
                );
                // The re-registered route must reflect the new SLA at once.
                let route = f.troute.route_of(Pid(pid as u64)).unwrap();
                prop_assert_eq!(
                    f.proxies.get(route.default_sq).prio,
                    Troute::base_priority(io),
                    "default NSQ priority is stale after the flip"
                );
                if io.is_latency_sensitive() {
                    prop_assert!(
                        route.outlier_sq.is_none(),
                        "L-tenant kept a stale outlier NSQ"
                    );
                }
            } else {
                let flags = match c.u8_in(0, 4) {
                    0 => ReqFlags::SYNC,
                    1 => ReqFlags::META,
                    _ => ReqFlags::NONE,
                };
                let sq = f.troute.route(
                    &bio(pid as u64, flags),
                    SimTime::ZERO,
                    &mut f.pol,
                    &mut f.nqreg,
                    &f.device,
                    &f.locks,
                    &mut f.proxies,
                );
                let target_prio = f.proxies.get(sq).prio;
                // Judged against the *current* SLA, not the registration-
                // time one: the L-invariant must hold mid-storm.
                if ionice[pid].is_latency_sensitive() {
                    prop_assert_eq!(
                        target_prio,
                        Priority::High,
                        "L-request routed against a stale (low) SLA"
                    );
                    prop_assert_eq!(
                        sq,
                        f.troute.route_of(Pid(pid as u64)).unwrap().default_sq
                    );
                } else if flags.is_outlier() {
                    prop_assert_eq!(
                        target_prio,
                        Priority::High,
                        "outlier routed to low priority mid-storm"
                    );
                } else {
                    prop_assert_eq!(
                        sq,
                        f.troute.route_of(Pid(pid as u64)).unwrap().default_sq
                    );
                    prop_assert_eq!(target_prio, Priority::Low);
                }
            }
        }
        // However many re-registrations happened, claims balance.
        for i in 0..n {
            f.troute.deregister(Pid(i as u64), &mut f.proxies);
        }
        prop_assert!(f.troute.is_empty());
        for p in f.proxies.iter() {
            prop_assert_eq!(p.assignments(), 0, "storm leaked assignments on {:?}", p.sq);
            prop_assert_eq!(p.nr_claimed_cores(), 0, "storm leaked core bits on {:?}", p.sq);
        }
        Ok(())
    });
}

/// `divide_priorities` always yields a balanced, high-first partition.
#[test]
fn divide_priorities_partitions() {
    check("divide_priorities_partitions", |c| {
        let nr_cqs = c.u16_in(0, 256);
        let prios = divide_priorities(nr_cqs);
        prop_assert_eq!(prios.len(), nr_cqs as usize);
        if nr_cqs >= 2 {
            let high = prios.iter().filter(|p| **p == Priority::High).count();
            prop_assert_eq!(high, (nr_cqs / 2) as usize);
            // High-priority prefix, low-priority suffix.
            let split = prios.iter().position(|p| *p == Priority::Low).unwrap();
            prop_assert!(prios[..split].iter().all(|p| *p == Priority::High));
            prop_assert!(prios[split..].iter().all(|p| *p == Priority::Low));
        } else {
            prop_assert!(prios.iter().all(|p| *p == Priority::High));
        }
        Ok(())
    });
}

/// The extracted [`DefaultPolicy`] *is* Algorithm 1 and Algorithm 2: over
/// arbitrary request contexts its route decision matches the pre-refactor
/// inline logic (High or non-outlier → default NSQ, Low outlier → outlier
/// path), and its merits are exactly the published `ncq_merit_k` /
/// `nsq_merit_k` kernels. This is the unit-level half of the
/// refactor-equivalence argument; `testbed/tests/policy_props.rs` checks
/// the live-run half.
#[test]
fn default_policy_matches_algorithms_1_and_2() {
    use daredevil::policy::{NcqMeritCtx, NsqMeritCtx, Policy, RouteCtx, RouteDecision};
    use daredevil::{ncq_merit_k, nsq_merit_k};
    use simkit::SimDuration;

    check("default_policy_matches_algorithms_1_and_2", |c| {
        let mut pol = DefaultPolicy::default();
        let base_prio = if c.u8_in(0, 2) == 1 {
            Priority::High
        } else {
            Priority::Low
        };
        let outlier = c.u8_in(0, 2) == 1;
        let route = pol.route(&RouteCtx {
            base_prio,
            outlier,
            write: c.u8_in(0, 2) == 1,
            bytes: c.u64_in(512, 1 << 20),
            issued_at: SimTime::ZERO,
            now: SimTime::ZERO,
        });
        let expected = if base_prio == Priority::Low && outlier {
            RouteDecision::Outlier
        } else {
            RouteDecision::Default
        };
        prop_assert_eq!(route, expected, "Algorithm 1 decision diverged");

        let ncq = NcqMeritCtx {
            in_flight: c.u64_in(0, 4096),
            depth: c.u16_in(1, 1024),
            complete_delta: c.u64_in(0, 10_000),
            irq_delta: c.u64_in(0, 1_000),
            assignments: c.u64_in(0, 64) as f64,
        };
        prop_assert_eq!(
            pol.ncq_merit(&ncq),
            ncq_merit_k(ncq.in_flight, ncq.depth, ncq.complete_delta, ncq.irq_delta),
            "NCQ merit diverged from Algorithm 2"
        );
        let nsq = NsqMeritCtx {
            lock_wait: SimDuration::from_micros(c.u64_in(0, 100_000)),
            submitted_delta: c.u64_in(0, 10_000),
            claimed_cores: c.u16_in(0, 64) as u32,
            assignments: c.u16_in(0, 64) as u32,
        };
        prop_assert_eq!(
            pol.nsq_merit(&nsq),
            nsq_merit_k(nsq.lock_wait, nsq.submitted_delta, nsq.claimed_cores),
            "NSQ merit diverged from Algorithm 2"
        );
        Ok(())
    });
}
