//! The programmable policy layer: routing, merit, and batching decisions
//! behind one documented trait.
//!
//! Algorithm 1 (troute's SLA assessment) and Algorithm 2 (nqreg's merit
//! scheduling) answer three questions on the I/O path, and before this
//! module they answered them with hardcoded logic:
//!
//! 1. **route** — which NSQ serves this request? ([`Policy::route`])
//! 2. **merit** — when a merit heap re-sorts, what number ranks each
//!    NCQ/NSQ? ([`Policy::ncq_merit`], [`Policy::nsq_merit`])
//! 3. **batch** — does a submission batch ring one doorbell per command or
//!    one per batch, and does an ISR signal completions per request or per
//!    batch? ([`Policy::doorbell`], [`Policy::reap`])
//!
//! [`Policy`] extracts exactly those decisions — and nothing else. The
//! *mechanism* stays in [`crate::troute`] / [`crate::nqreg`] /
//! [`crate::stack_impl`]: tenant tables and claimed-core bitmaps, the
//! outlier-tendency profiler and its window, EWMA smoothing, the
//! assignment-count tie-breaker, MRU budgets, heap maintenance, lock and
//! doorbell accounting. A policy author writes a handful of pure
//! decisions; the stack keeps its zero-allocation hot path.
//!
//! # Shipped policies
//!
//! | name (`--policy`) | route | merit | batch |
//! |---|---|---|---|
//! | [`default`](DefaultPolicy) | Algorithm 1 | Algorithm 2 | SLA-aware (§5.3) |
//! | [`deadline`](DeadlinePolicy) | promotes T reads (callers block on reads, so their deadline is tight) | Algorithm 2 | latency-first everywhere |
//! | [`sizeclass`](SizeClassPolicy) | by request size only, SLA-blind | Algorithm 2 | SLA-aware |
//! | [`fairshare`](FairSharePolicy) | per-request spray, T quota-promoted into the high group | by traffic share, not contention | SLA-aware |
//!
//! # Determinism rules for policy authors
//!
//! The whole workspace is gated on byte-identical figure output across
//! worker counts and re-runs (`scripts/verify.sh`), so a policy **must**
//! be a deterministic function of its inputs:
//!
//! * decide only from the `*Ctx` arguments and `self` state that was
//!   itself built deterministically — no wall clock, no OS randomness, no
//!   global state;
//! * no floating-point reductions whose order varies (the contexts hand
//!   you pre-reduced sums for exactly this reason);
//! * keep the hot path allocation-free: `route`/`doorbell`/`reap` run per
//!   request/batch — no `HashMap`, no `Vec` growth, no boxing
//!   (`scripts/verify.sh` greps this file to enforce it);
//! * `ncq_merit`/`nsq_merit` only run inside MRU-gated re-sorts (cold by
//!   design) but still must be pure.
//!
//! # Writing a policy
//!
//! The README's "Writing a policy" walkthrough builds [`DeadlinePolicy`]
//! from scratch. The short version:
//!
//! ```
//! use daredevil::policy::{
//!     DoorbellCtx, DoorbellMode, Policy, ReapCtx, RouteCtx, RouteDecision,
//! };
//! use daredevil::{CompletionMode, Priority};
//!
//! /// Everything latency: every request to the high group, every doorbell
//! /// immediate, every completion per-request. (A terrible idea under
//! /// load — which is exactly what the ext_policy figure is for.)
//! struct AlwaysHigh;
//!
//! impl Policy for AlwaysHigh {
//!     fn name(&self) -> &'static str {
//!         "always-high"
//!     }
//!     fn route(&mut self, _ctx: &RouteCtx) -> RouteDecision {
//!         RouteDecision::Query { prio: Priority::High, m: 1 }
//!     }
//!     // ncq_merit / nsq_merit keep Algorithm 2 (the trait defaults).
//!     fn doorbell(&mut self, _ctx: &DoorbellCtx) -> DoorbellMode {
//!         DoorbellMode::Immediate
//!     }
//!     fn reap(&mut self, _ctx: &ReapCtx) -> CompletionMode {
//!         CompletionMode::PerRequest
//!     }
//! }
//!
//! // Plug it into a stack (static dispatch — no enum registration needed):
//! use daredevil::{DaredevilConfig, DaredevilStack};
//! let stack = DaredevilStack::with_policy(
//!     DaredevilConfig::default(),
//!     AlwaysHigh,
//!     4,
//!     64,
//!     64,
//!     |sq| sq % 64,
//! );
//! assert_eq!(blkstack::StorageStack::name(&stack), "always-high");
//! ```
//!
//! The built-in policies are also reachable by name through
//! [`PolicySpec::parse`] (the `--policy NAME` flag of every figure binary)
//! and dispatch through [`PolicyKind`] — a single `match` per decision, so
//! the default stack type needs no generics at its uses.

use simkit::{SimDuration, SimTime};

pub use blkstack::stack::{CompletionMode, DoorbellMode};

use crate::config::{DaredevilConfig, Variant};
use crate::nproxy::Priority;
use crate::nqreg::{ncq_merit_k, nsq_merit_k};

/// Everything [`Policy::route`] may inspect about one request.
///
/// Mechanism state (the tenant's default/outlier NSQ, profiling counters,
/// claimed cores) is deliberately *not* exposed: a route decision names a
/// path (see [`RouteDecision`]), and the router resolves it against its
/// tables. That keeps tenant bookkeeping correct under every policy.
#[derive(Clone, Copy, Debug)]
pub struct RouteCtx {
    /// The tenant's base priority from its ionice class (High = L-tenant).
    pub base_prio: Priority,
    /// Whether the request carries outlier flags (`REQ_SYNC`/`REQ_META`).
    pub outlier: bool,
    /// Whether the request writes (write or flush; reads block callers).
    pub write: bool,
    /// Request payload in bytes.
    pub bytes: u64,
    /// When the issuer submitted the bio.
    pub issued_at: SimTime,
    /// Current simulation time.
    pub now: SimTime,
}

/// Where a routed request goes. Returned by [`Policy::route`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RouteDecision {
    /// The tenant's default NSQ (Algorithm 1 lines 1–3: the table-lookup
    /// fast path; L-tenants and normal T-requests take it).
    Default,
    /// The tenant's outlier path (Algorithm 1 lines 4–9): the dedicated
    /// outlier NSQ when the tenant is tagged, otherwise a one-off
    /// high-priority nqreg query with `m = 1`.
    Outlier,
    /// A fresh nqreg query: pick an NSQ from `prio`'s NQGroup now,
    /// decrementing the merit heaps' MRU budgets by `m`. More flexible
    /// than the table paths and proportionally more expensive — `m = 1`
    /// costs one budget unit per request, `m = MRU` forces a re-sort.
    Query {
        /// NQGroup to query.
        prio: Priority,
        /// MRU decrement (see [`crate::troute::QueryContext`]).
        m: u32,
    },
}

/// Inputs to one NCQ's merit when its heap re-sorts
/// ([`Policy::ncq_merit`]). Deltas are windows since the NCQ's previous
/// re-sort.
#[derive(Clone, Copy, Debug)]
pub struct NcqMeritCtx {
    /// Requests currently in flight on the NCQ.
    pub in_flight: u64,
    /// The NCQ's depth.
    pub depth: u16,
    /// Requests completed in the window.
    pub complete_delta: u64,
    /// Interrupts raised in the window.
    pub irq_delta: u64,
    /// Tenant assignments currently pointing at the NCQ's NSQs (summed in
    /// fixed NSQ order — use this instead of re-summing, it is the
    /// deterministic reduction).
    pub assignments: f64,
}

/// Inputs to one NSQ's merit when its NCQ's heap re-sorts
/// ([`Policy::nsq_merit`]). Deltas are windows since the NSQ's previous
/// re-sort.
#[derive(Clone, Copy, Debug)]
pub struct NsqMeritCtx {
    /// Time submitters spent inside the NSQ lock in the window.
    pub lock_wait: SimDuration,
    /// Requests submitted through the NSQ in the window.
    pub submitted_delta: u64,
    /// Cores whose tenants currently claim the NSQ.
    pub claimed_cores: u32,
    /// Tenant assignments currently pointing at the NSQ.
    pub assignments: u32,
}

/// Inputs to the doorbell decision for one per-NSQ submission batch
/// ([`Policy::doorbell`]).
#[derive(Clone, Copy, Debug)]
pub struct DoorbellCtx {
    /// Priority of the NSQ the batch targets.
    pub prio: Priority,
    /// Commands staged in the batch.
    pub commands: u64,
}

/// Inputs to the completion-reap decision for one ISR invocation
/// ([`Policy::reap`]).
#[derive(Clone, Copy, Debug)]
pub struct ReapCtx {
    /// Priority of the interrupting NCQ.
    pub prio: Priority,
    /// CQEs drained by this ISR.
    pub entries: u64,
}

/// One scheduling policy: the three decision points the Daredevil stack
/// consults on the I/O path.
///
/// Implementations take `&mut self`, so a policy may keep its own
/// (deterministically updated) state. See the module docs for the
/// determinism and allocation rules, and [`DefaultPolicy`] for the
/// paper-exact reference implementation.
pub trait Policy {
    /// Short static name, used in stack labels and tables.
    fn name(&self) -> &'static str;

    /// Routes one request (Algorithm 1's slot). Called once per bio on the
    /// submission path — keep it branch-cheap and allocation-free.
    fn route(&mut self, ctx: &RouteCtx) -> RouteDecision;

    /// Ranks one NCQ when its group's merit heap re-sorts (Algorithm 2
    /// line 4's slot). Lower merit = preferred. The EWMA smoothing and the
    /// assignment tie-breaker are applied by nqreg *after* this returns.
    ///
    /// Defaults to Algorithm 2's IRQ-balancing kernel ([`ncq_merit_k`]).
    #[inline]
    fn ncq_merit(&mut self, ctx: &NcqMeritCtx) -> f64 {
        ncq_merit_k(ctx.in_flight, ctx.depth, ctx.complete_delta, ctx.irq_delta)
    }

    /// Ranks one NSQ when its NCQ's merit heap re-sorts (Algorithm 2
    /// line 6's slot). Lower merit = preferred; smoothing/tie-breaking as
    /// in [`Policy::ncq_merit`].
    ///
    /// Defaults to Algorithm 2's contention kernel ([`nsq_merit_k`]).
    #[inline]
    fn nsq_merit(&mut self, ctx: &NsqMeritCtx) -> f64 {
        nsq_merit_k(ctx.lock_wait, ctx.submitted_delta, ctx.claimed_cores)
    }

    /// Chooses the doorbell discipline for one per-NSQ submission batch
    /// (the submission half of §5.3's SLA-aware I/O service dispatching).
    ///
    /// Defaults to §5.3's SLA-aware mode: immediate rings for the
    /// high-priority group, batched for the rest.
    #[inline]
    fn doorbell(&mut self, ctx: &DoorbellCtx) -> DoorbellMode {
        if ctx.prio == Priority::High {
            DoorbellMode::Immediate
        } else {
            DoorbellMode::Batched
        }
    }

    /// Chooses the completion discipline for one ISR invocation (the
    /// completion half of §5.3's dispatching).
    ///
    /// Defaults to §5.3's SLA-aware mode: per-request reaping for the
    /// high-priority group, batched for the rest.
    #[inline]
    fn reap(&mut self, ctx: &ReapCtx) -> CompletionMode {
        if ctx.prio == Priority::High {
            CompletionMode::PerRequest
        } else {
            CompletionMode::Batched
        }
    }
}

/// The paper's policy: Algorithm 1 routing, Algorithm 2 merits, and §5.3's
/// SLA-aware service dispatching.
///
/// This is the reference implementation the figure goldens are captured
/// under — byte-identical to the pre-extraction hardcoded paths (gated by
/// `scripts/verify.sh` and the `policy_props` properties).
///
/// ```
/// use daredevil::policy::{DefaultPolicy, Policy, RouteCtx, RouteDecision};
/// use daredevil::Priority;
/// use simkit::SimTime;
///
/// let mut p = DefaultPolicy::default();
/// let ctx = RouteCtx {
///     base_prio: Priority::Low,
///     outlier: true, // an fsync from a T-tenant
///     write: true,
///     bytes: 4096,
///     issued_at: SimTime::ZERO,
///     now: SimTime::ZERO,
/// };
/// assert_eq!(p.route(&ctx), RouteDecision::Outlier);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct DefaultPolicy {
    /// Whether §5.3's SLA-aware dispatching is active (true for the
    /// `dare-full` variant; the `dare-base`/`dare-sched` ablations keep
    /// kernel-default batching).
    pub sla_dispatch: bool,
}

impl Default for DefaultPolicy {
    fn default() -> Self {
        DefaultPolicy { sla_dispatch: true }
    }
}

impl DefaultPolicy {
    /// The default policy as the given ablation variant runs it.
    pub fn for_variant(variant: Variant) -> Self {
        DefaultPolicy {
            sla_dispatch: variant == Variant::Full,
        }
    }
}

impl Policy for DefaultPolicy {
    fn name(&self) -> &'static str {
        "default"
    }

    #[inline]
    fn route(&mut self, ctx: &RouteCtx) -> RouteDecision {
        // Algorithm 1: L-tenants (lines 1-2) and normal T-requests (line 3)
        // take the default NSQ; T outliers (lines 4-9) the outlier path.
        if ctx.base_prio == Priority::Low && ctx.outlier {
            RouteDecision::Outlier
        } else {
            RouteDecision::Default
        }
    }

    // ncq_merit / nsq_merit: Algorithm 2, the trait defaults.

    #[inline]
    fn doorbell(&mut self, ctx: &DoorbellCtx) -> DoorbellMode {
        if self.sla_dispatch && ctx.prio == Priority::High {
            DoorbellMode::Immediate
        } else {
            DoorbellMode::Batched
        }
    }

    #[inline]
    fn reap(&mut self, ctx: &ReapCtx) -> CompletionMode {
        if self.sla_dispatch && ctx.prio == Priority::High {
            CompletionMode::PerRequest
        } else {
            CompletionMode::Batched
        }
    }
}

/// QWin-style deadline-aware routing: optimise for *every* tenant's tail
/// deadline, not only the L-class.
///
/// Reads block their callers, so their effective deadline is tight no
/// matter the issuer's SLA: `deadline` promotes T-tenant reads into the
/// high-priority NQGroup with per-request queries, and runs latency-first
/// service routines (immediate doorbells, per-request reaps) on *all*
/// queues. T writes are asynchronous — deadline-slack — and stay on the
/// tenant's default (low-group) NSQ.
///
/// The trade this policy makes visible in `ext_policy`: background T read
/// streams flood the high group, so the L-class loses its isolation while
/// T op tails improve — the opposite end of the design space from
/// Algorithm 1's L-first stance.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeadlinePolicy;

impl Policy for DeadlinePolicy {
    fn name(&self) -> &'static str {
        "deadline"
    }

    #[inline]
    fn route(&mut self, ctx: &RouteCtx) -> RouteDecision {
        if ctx.base_prio == Priority::High {
            return RouteDecision::Default;
        }
        if ctx.outlier {
            return RouteDecision::Outlier;
        }
        if !ctx.write {
            // A blocking read on a deadline: per-request high-group query.
            return RouteDecision::Query {
                prio: Priority::High,
                m: 1,
            };
        }
        RouteDecision::Default
    }

    // ncq_merit / nsq_merit: Algorithm 2, the trait defaults.

    #[inline]
    fn doorbell(&mut self, _ctx: &DoorbellCtx) -> DoorbellMode {
        DoorbellMode::Immediate
    }

    #[inline]
    fn reap(&mut self, _ctx: &ReapCtx) -> CompletionMode {
        CompletionMode::PerRequest
    }
}

/// Size-class isolation: small requests high, bulk requests low, SLA-blind.
///
/// The classic storage heuristic (small I/O ≈ latency-sensitive, bulk I/O ≈
/// bandwidth-bound) applied at the NQ layer: every request at or below
/// [`SizeClassPolicy::threshold`] takes a per-request query into the
/// high-priority NQGroup, everything larger a per-request query into the
/// low group. Tenant identity, ionice, and outlier flags are ignored
/// entirely — which `ext_policy` shows is both its strength (a T-tenant's
/// small metadata I/O never queues behind bulk) and its weakness (an
/// L-tenant's occasional large read loses its SLA).
#[derive(Clone, Copy, Debug)]
pub struct SizeClassPolicy {
    /// Largest payload (bytes) still counted as the small class.
    pub threshold: u64,
}

impl Default for SizeClassPolicy {
    fn default() -> Self {
        // 32 KiB: between the paper's 4 KiB L-requests and 128 KiB T-bulk.
        SizeClassPolicy { threshold: 32 * 1024 }
    }
}

impl Policy for SizeClassPolicy {
    fn name(&self) -> &'static str {
        "sizeclass"
    }

    #[inline]
    fn route(&mut self, ctx: &RouteCtx) -> RouteDecision {
        let prio = if ctx.bytes <= self.threshold {
            Priority::High
        } else {
            Priority::Low
        };
        RouteDecision::Query { prio, m: 1 }
    }

    // Merits and batching: the trait defaults (Algorithm 2, SLA-aware).
}

/// Fair-share spray: every request queried, and the premium group shared
/// out by quota instead of reserved for the SLA class.
///
/// Routing starts from Algorithm 1's SLA split (L and outliers high, T
/// low) but abandons both tenant-default NSQs and strict reservation:
/// every request takes a fresh `m = 1` query, and one in [`share`]
/// low-priority requests is *promoted* into the high group, so background
/// tenants are guaranteed a fixed slice of the premium path rather than
/// only its leftovers. The merits rank queues by how many requests they
/// carried in the last window plus how many tenants point at them — load
/// share, not the lock-contention and IRQ-balancing signals Algorithm 2
/// optimises. `ext_policy` shows what that buys (even utilisation, a
/// throughput floor for T) and what it costs (L shares its fast path with
/// promoted T traffic, scheduling work on every request).
///
/// [`share`]: FairSharePolicy::share
#[derive(Clone, Copy, Debug)]
pub struct FairSharePolicy {
    /// Promote one in `share` low-priority requests to the high group.
    /// Must be non-zero; the default is 4 (T gets a 25% slice).
    pub share: u64,
    low_seen: u64,
}

impl Default for FairSharePolicy {
    fn default() -> Self {
        FairSharePolicy {
            share: 4,
            low_seen: 0,
        }
    }
}

impl Policy for FairSharePolicy {
    fn name(&self) -> &'static str {
        "fairshare"
    }

    #[inline]
    fn route(&mut self, ctx: &RouteCtx) -> RouteDecision {
        let prio = if ctx.base_prio == Priority::High || ctx.outlier {
            Priority::High
        } else {
            self.low_seen += 1;
            if self.low_seen % self.share == 0 {
                Priority::High
            } else {
                Priority::Low
            }
        };
        RouteDecision::Query { prio, m: 1 }
    }

    #[inline]
    fn ncq_merit(&mut self, ctx: &NcqMeritCtx) -> f64 {
        // Share of recent completions + standing assignments: queues that
        // carried more traffic rank worse, evening out the spray.
        ctx.complete_delta as f64 + ctx.assignments
    }

    #[inline]
    fn nsq_merit(&mut self, ctx: &NsqMeritCtx) -> f64 {
        ctx.submitted_delta as f64 + ctx.assignments as f64
    }

    // Batching: the trait defaults (§5.3's SLA-aware modes).
}

/// Built-in policy selection, as configuration data.
///
/// This is the `Copy` value that rides in [`DaredevilConfig`] (and through
/// scenario specs); [`PolicyKind::from_config`] turns it into the live
/// policy when a stack is built. Parse CLI names with
/// [`PolicySpec::parse`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PolicySpec {
    /// Algorithm 1/2 + §5.3 dispatching ([`DefaultPolicy`]).
    #[default]
    Default,
    /// Deadline-aware routing ([`DeadlinePolicy`]).
    Deadline,
    /// Size-class isolation ([`SizeClassPolicy`]).
    SizeClass,
    /// Fair-share spray ([`FairSharePolicy`]).
    FairShare,
}

impl PolicySpec {
    /// Every built-in policy, default first (the `ext_policy` sweep order).
    pub const ALL: [PolicySpec; 4] = [
        PolicySpec::Default,
        PolicySpec::Deadline,
        PolicySpec::SizeClass,
        PolicySpec::FairShare,
    ];

    /// The CLI name (`--policy NAME`).
    pub fn name(self) -> &'static str {
        match self {
            PolicySpec::Default => "default",
            PolicySpec::Deadline => "deadline",
            PolicySpec::SizeClass => "sizeclass",
            PolicySpec::FairShare => "fairshare",
        }
    }

    /// Parses a CLI name; `None` for unknown names.
    ///
    /// ```
    /// use daredevil::policy::PolicySpec;
    /// assert_eq!(PolicySpec::parse("deadline"), Some(PolicySpec::Deadline));
    /// assert_eq!(PolicySpec::parse("nope"), None);
    /// ```
    pub fn parse(name: &str) -> Option<Self> {
        PolicySpec::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// The built-in policies behind one enum: a single `match` per decision
/// point, so [`crate::DaredevilStack`]'s default type parameter stays a
/// concrete, non-generic type everywhere the testbed holds one.
///
/// Custom policies skip this enum entirely — implement [`Policy`] and use
/// [`crate::DaredevilStack::with_policy`] for static dispatch.
#[derive(Clone, Copy, Debug)]
pub enum PolicyKind {
    /// [`DefaultPolicy`].
    Default(DefaultPolicy),
    /// [`DeadlinePolicy`].
    Deadline(DeadlinePolicy),
    /// [`SizeClassPolicy`].
    SizeClass(SizeClassPolicy),
    /// [`FairSharePolicy`].
    FairShare(FairSharePolicy),
}

impl PolicyKind {
    /// Builds the configured policy for a stack configuration (the
    /// ablation variant parameterises [`DefaultPolicy`]'s dispatching).
    pub fn from_config(cfg: &DaredevilConfig) -> Self {
        match cfg.policy {
            PolicySpec::Default => {
                PolicyKind::Default(DefaultPolicy::for_variant(cfg.variant))
            }
            PolicySpec::Deadline => PolicyKind::Deadline(DeadlinePolicy),
            PolicySpec::SizeClass => PolicyKind::SizeClass(SizeClassPolicy::default()),
            PolicySpec::FairShare => PolicyKind::FairShare(FairSharePolicy::default()),
        }
    }
}

impl Default for PolicyKind {
    fn default() -> Self {
        PolicyKind::Default(DefaultPolicy::default())
    }
}

macro_rules! dispatch {
    ($self:ident, $p:ident => $call:expr) => {
        match $self {
            PolicyKind::Default($p) => $call,
            PolicyKind::Deadline($p) => $call,
            PolicyKind::SizeClass($p) => $call,
            PolicyKind::FairShare($p) => $call,
        }
    };
}

impl Policy for PolicyKind {
    fn name(&self) -> &'static str {
        dispatch!(self, p => p.name())
    }

    #[inline]
    fn route(&mut self, ctx: &RouteCtx) -> RouteDecision {
        dispatch!(self, p => p.route(ctx))
    }

    #[inline]
    fn ncq_merit(&mut self, ctx: &NcqMeritCtx) -> f64 {
        dispatch!(self, p => p.ncq_merit(ctx))
    }

    #[inline]
    fn nsq_merit(&mut self, ctx: &NsqMeritCtx) -> f64 {
        dispatch!(self, p => p.nsq_merit(ctx))
    }

    #[inline]
    fn doorbell(&mut self, ctx: &DoorbellCtx) -> DoorbellMode {
        dispatch!(self, p => p.doorbell(ctx))
    }

    #[inline]
    fn reap(&mut self, ctx: &ReapCtx) -> CompletionMode {
        dispatch!(self, p => p.reap(ctx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(base_prio: Priority, outlier: bool, write: bool, bytes: u64) -> RouteCtx {
        RouteCtx {
            base_prio,
            outlier,
            write,
            bytes,
            issued_at: SimTime::ZERO,
            now: SimTime::ZERO,
        }
    }

    #[test]
    fn default_policy_is_algorithm_1() {
        let mut p = DefaultPolicy::default();
        // Lines 1-2: L always default.
        assert_eq!(
            p.route(&ctx(Priority::High, true, false, 4096)),
            RouteDecision::Default
        );
        // Line 3: normal T default.
        assert_eq!(
            p.route(&ctx(Priority::Low, false, true, 131072)),
            RouteDecision::Default
        );
        // Lines 4-9: T outlier.
        assert_eq!(
            p.route(&ctx(Priority::Low, true, true, 4096)),
            RouteDecision::Outlier
        );
    }

    #[test]
    fn default_policy_merits_match_algorithm_2() {
        let mut p = DefaultPolicy::default();
        let m = p.ncq_merit(&NcqMeritCtx {
            in_flight: 512,
            depth: 1024,
            complete_delta: 100,
            irq_delta: 10,
            assignments: 7.0,
        });
        assert_eq!(m, ncq_merit_k(512, 1024, 100, 10));
        let m = p.nsq_merit(&NsqMeritCtx {
            lock_wait: SimDuration::from_micros(30),
            submitted_delta: 10,
            claimed_cores: 4,
            assignments: 7,
        });
        assert_eq!(m, nsq_merit_k(SimDuration::from_micros(30), 10, 4));
    }

    #[test]
    fn default_policy_dispatch_follows_variant() {
        let mut full = DefaultPolicy::for_variant(Variant::Full);
        let mut sched = DefaultPolicy::for_variant(Variant::Sched);
        let high = DoorbellCtx {
            prio: Priority::High,
            commands: 1,
        };
        let low = DoorbellCtx {
            prio: Priority::Low,
            commands: 8,
        };
        assert_eq!(full.doorbell(&high), DoorbellMode::Immediate);
        assert_eq!(full.doorbell(&low), DoorbellMode::Batched);
        assert_eq!(sched.doorbell(&high), DoorbellMode::Batched);
        let high = ReapCtx {
            prio: Priority::High,
            entries: 4,
        };
        assert_eq!(full.reap(&high), CompletionMode::PerRequest);
        assert_eq!(sched.reap(&high), CompletionMode::Batched);
    }

    #[test]
    fn deadline_promotes_t_reads_only() {
        let mut p = DeadlinePolicy;
        assert_eq!(
            p.route(&ctx(Priority::Low, false, false, 131072)),
            RouteDecision::Query {
                prio: Priority::High,
                m: 1
            }
        );
        assert_eq!(
            p.route(&ctx(Priority::Low, false, true, 131072)),
            RouteDecision::Default
        );
        assert_eq!(
            p.route(&ctx(Priority::Low, true, true, 4096)),
            RouteDecision::Outlier
        );
        assert_eq!(
            p.route(&ctx(Priority::High, false, false, 4096)),
            RouteDecision::Default
        );
        assert_eq!(
            p.reap(&ReapCtx {
                prio: Priority::Low,
                entries: 32
            }),
            CompletionMode::PerRequest
        );
    }

    #[test]
    fn sizeclass_ignores_sla() {
        let mut p = SizeClassPolicy::default();
        let small = RouteDecision::Query {
            prio: Priority::High,
            m: 1,
        };
        let large = RouteDecision::Query {
            prio: Priority::Low,
            m: 1,
        };
        assert_eq!(p.route(&ctx(Priority::High, false, false, 4096)), small);
        assert_eq!(p.route(&ctx(Priority::Low, true, true, 4096)), small);
        assert_eq!(p.route(&ctx(Priority::High, false, false, 131072)), large);
        assert_eq!(p.route(&ctx(Priority::Low, false, true, 131072)), large);
    }

    #[test]
    fn fairshare_sprays_within_sla_groups() {
        let mut p = FairSharePolicy::default();
        assert_eq!(
            p.route(&ctx(Priority::High, false, false, 4096)),
            RouteDecision::Query {
                prio: Priority::High,
                m: 1
            }
        );
        // Low requests 1..3 stay low; the 4th is promoted (default 25%
        // premium-path quota), then the cycle repeats.
        for _ in 0..3 {
            assert_eq!(
                p.route(&ctx(Priority::Low, false, false, 131072)),
                RouteDecision::Query {
                    prio: Priority::Low,
                    m: 1
                }
            );
        }
        assert_eq!(
            p.route(&ctx(Priority::Low, false, false, 131072)),
            RouteDecision::Query {
                prio: Priority::High,
                m: 1
            }
        );
        // Merit ranks by traffic, not contention.
        let busy = NcqMeritCtx {
            in_flight: 0,
            depth: 1024,
            complete_delta: 500,
            irq_delta: 1,
            assignments: 2.0,
        };
        let idle = NcqMeritCtx {
            in_flight: 0,
            depth: 1024,
            complete_delta: 0,
            irq_delta: 1,
            assignments: 2.0,
        };
        assert!(p.ncq_merit(&busy) > p.ncq_merit(&idle));
    }

    #[test]
    fn spec_round_trips_names() {
        for spec in PolicySpec::ALL {
            assert_eq!(PolicySpec::parse(spec.name()), Some(spec));
        }
        assert_eq!(PolicySpec::parse("bogus"), None);
        assert_eq!(PolicySpec::default(), PolicySpec::Default);
    }

    #[test]
    fn kind_delegates_to_inner_policy() {
        let cfg = DaredevilConfig {
            policy: PolicySpec::Deadline,
            ..DaredevilConfig::default()
        };
        let mut k = PolicyKind::from_config(&cfg);
        assert_eq!(k.name(), "deadline");
        assert_eq!(
            k.route(&ctx(Priority::Low, false, false, 131072)),
            RouteDecision::Query {
                prio: Priority::High,
                m: 1
            }
        );
        let k = PolicyKind::from_config(&DaredevilConfig::sched());
        match k {
            PolicyKind::Default(d) => assert!(!d.sla_dispatch),
            _ => panic!("sched config must build the default policy"),
        }
    }
}
