//! nqreg: the NQ-level regulator (Algorithm 2).
//!
//! nqreg owns the *NQ heterogeneity*: at driver initialization it divides
//! the NCQs (and their attached NSQs) into a high- and a low-priority
//! NQGroup, then serves NSQ-selection queries from troute by a two-step
//! scheduling procedure inside the requested group:
//!
//! 1. pick an NCQ from the group's merit min-heap (criterion: IRQ
//!    balancing);
//! 2. pick an NSQ from the chosen NCQ's merit min-heap (criterion:
//!    contention avoidance); with a 1:1 NSQ–NCQ binding this step
//!    degenerates to the single attached NSQ.
//!
//! Merits are exponentially smoothed (`α ∈ (0.5, 1)`) and heaps are only
//! recomputed when their MRU budget is exhausted, bounding the scheduling
//! cost on the critical path. The kernel prototype protects the heaps with
//! RCU; the simulation is single-threaded, so what is modelled is the
//! *update frequency* the MRU policy produces — the performance-relevant
//! part.
//!
//! # Paper mapping (§4 "nqreg", §5.3, Algorithm 2)
//!
//! | This module | Paper concept |
//! |---|---|
//! | [`divide_priorities`] | init-time equal division of NCQs into high/low NQGroups, §5.3 |
//! | [`ncq_merit_k`] | `MeritCalc` NCQ step — IRQ balancing criterion, Algorithm 2 line 4 |
//! | [`nsq_merit_k`] | `MeritCalc` NSQ step — contention-avoidance criterion, Algorithm 2 line 6 |
//! | [`NqReg::schedule`] | the two-step heap query serving troute, Algorithm 2 lines 1–8 |
//! | the policy's merit hooks | Algorithm 2's criteria as [`crate::policy::Policy::ncq_merit`] / [`nsq_merit`](crate::policy::Policy::nsq_merit); [`crate::policy::DefaultPolicy`] delegates to the two `*_merit_k` functions above bit-for-bit |
//! | the `α` smoothing parameter | exponential merit smoothing with `α ∈ (0.5, 1)`, §5.3 |
//! | the MRU budget | bounded heap re-sorts on the critical path (`m` decrements, resort at 0), §5.3 |
//! | SLA-aware dispatch flags | immediate vs batched doorbells / per-request vs batched completions, §5.3 |
//!
//! The "merit heap always returns the min" workspace invariant lives in
//! `simkit` (`keyed_heap_top_is_min`); the wall-clock cost the MRU budget
//! amortises is measured by `bench/benches/micro.rs` (`nqreg/*`).

use dd_nvme::{CqId, NvmeDevice, SqId};
use simkit::{Ewma, KeyedMinHeap, SimDuration};

use blkstack::nsqlock::NsqLockTable;

use crate::nproxy::{Priority, ProxyTable};
use crate::policy::{NcqMeritCtx, NsqMeritCtx, Policy};

/// Equal division of NCQs into priorities: first half high, second half low
/// (nqreg cannot foresee the tenant mix at init, §5.3). A single-CQ device
/// cannot be divided; everything lands in one shared group.
pub fn divide_priorities(nr_cqs: u16) -> Vec<Priority> {
    if nr_cqs < 2 {
        return vec![Priority::High; nr_cqs as usize];
    }
    let half = nr_cqs / 2;
    (0..nr_cqs)
        .map(|i| {
            if i < half {
                Priority::High
            } else {
                Priority::Low
            }
        })
        .collect()
}

/// The instantaneous NCQ merit (`MeritCalc`, Algorithm 2 line 4):
/// `(in_flight/depth + complete/irqs) × irqs`, computed over the window
/// since the last heap update.
pub fn ncq_merit_k(in_flight: u64, depth: u16, complete_delta: u64, irq_delta: u64) -> f64 {
    let incoming = in_flight as f64 / depth.max(1) as f64;
    let per_irq = complete_delta as f64 / irq_delta.max(1) as f64;
    (incoming + per_irq) * irq_delta as f64
}

/// The instantaneous NSQ merit (Algorithm 2 line 6):
/// `(in_lock_us/submitted_rqs) × nr_claimed_cores` over the window since the
/// last heap update.
pub fn nsq_merit_k(lock_wait: SimDuration, submitted_delta: u64, claimed_cores: u32) -> f64 {
    let per_rq_us = lock_wait.as_micros_f64() / submitted_delta.max(1) as f64;
    per_rq_us * claimed_cores.max(1) as f64
}

/// Weight of the assignment-count tie-breaker added to every merit.
///
/// Fresh queues all have zero merit; without a tie-breaker every new tenant
/// would be assigned the same NSQ. Counting current assignments (scaled far
/// below any real merit signal) spreads tenants deterministically — the
/// "helps to distribute tenants to use different NQs" behaviour of §5.3.
const ASSIGNMENT_TIE_WEIGHT: f64 = 1e-3;

#[derive(Debug)]
struct NcqMeritState {
    ewma: Ewma,
    last_complete: u64,
    last_irqs: u64,
}

#[derive(Debug)]
struct NsqMeritState {
    ewma: Ewma,
    last_lock_wait: SimDuration,
    last_submitted: u64,
}

/// Per-NCQ node: the attached NSQs and their merit heap.
#[derive(Debug)]
struct NcqNode {
    nsq_heap: KeyedMinHeap<SqId>,
    mru: i64,
}

/// One priority group of NCQs.
#[derive(Debug)]
struct NqGroup {
    ncq_heap: KeyedMinHeap<CqId>,
    mru: i64,
    /// Flattened NSQ list for the round-robin fallback (`dare-base`).
    rr_flat: Vec<SqId>,
    rr_cursor: usize,
}

/// The NQ regulator.
#[derive(Debug)]
pub struct NqReg {
    alpha: f64,
    mru_init: u32,
    /// Merit-based scheduling on (false = round-robin, the `dare-base`
    /// ablation).
    use_merit: bool,
    groups: [NqGroup; 2],
    ncq_nodes: Vec<NcqNode>,
    ncq_state: Vec<NcqMeritState>,
    nsq_state: Vec<NsqMeritState>,
    cq_priority: Vec<Priority>,
    /// Heap recomputations performed (observability: the MRU policy's whole
    /// point is keeping this small relative to queries).
    resorts: u64,
    queries: u64,
}

impl NqReg {
    /// Builds the regulator for a device with `nr_sqs` NSQs and `nr_cqs`
    /// NCQs, where NSQ `i` pairs NCQ `cq_of(i)`.
    pub fn new(
        alpha: f64,
        mru: u32,
        use_merit: bool,
        nr_sqs: u16,
        nr_cqs: u16,
        mut cq_of: impl FnMut(u16) -> u16,
    ) -> Self {
        let cq_priority = divide_priorities(nr_cqs);
        let mut ncq_nodes: Vec<NcqNode> = (0..nr_cqs)
            .map(|_| NcqNode {
                nsq_heap: KeyedMinHeap::new(),
                mru: mru as i64,
            })
            .collect();
        // Attach NSQs to their NCQ nodes. An NSQ inherits its NCQ's priority.
        let mut sq_prio = vec![Priority::High; nr_sqs as usize];
        for sq in 0..nr_sqs {
            let cq = cq_of(sq);
            ncq_nodes[cq as usize].nsq_heap.insert(SqId(sq), 0.0);
            sq_prio[sq as usize] = cq_priority[cq as usize];
        }
        let mut groups = [
            NqGroup {
                ncq_heap: KeyedMinHeap::new(),
                mru: mru as i64,
                rr_flat: Vec::new(),
                rr_cursor: 0,
            },
            NqGroup {
                ncq_heap: KeyedMinHeap::new(),
                mru: mru as i64,
                rr_flat: Vec::new(),
                rr_cursor: 0,
            },
        ];
        for (cq, prio) in cq_priority.iter().enumerate() {
            groups[prio.index()].ncq_heap.insert(CqId(cq as u16), 0.0);
        }
        for sq in 0..nr_sqs {
            groups[sq_prio[sq as usize].index()].rr_flat.push(SqId(sq));
        }
        // A single-CQ (or single-priority) device leaves the low group
        // empty: fall back to sharing the high group's queues so routing
        // never dead-ends (separation is simply impossible there).
        if groups[Priority::Low.index()].ncq_heap.is_empty() {
            // Split-borrow the two groups so the high group's heap is
            // iterated in place — no temporary `Vec<CqId>` collect, no
            // `rr_flat.clone()`; the single allocation left is the low
            // group's own flat list, sized exactly once.
            let (high_half, low_half) = groups.split_at_mut(Priority::Low.index());
            let high = &high_half[Priority::High.index()];
            let low = &mut low_half[0];
            for (c, _) in high.ncq_heap.iter() {
                low.ncq_heap.insert(c, 0.0);
            }
            low.rr_flat.extend_from_slice(&high.rr_flat);
        }
        NqReg {
            alpha,
            mru_init: mru,
            use_merit,
            groups,
            ncq_nodes,
            ncq_state: (0..nr_cqs)
                .map(|_| NcqMeritState {
                    ewma: Ewma::new(alpha),
                    last_complete: 0,
                    last_irqs: 0,
                })
                .collect(),
            nsq_state: (0..nr_sqs)
                .map(|_| NsqMeritState {
                    ewma: Ewma::new(alpha),
                    last_lock_wait: SimDuration::ZERO,
                    last_submitted: 0,
                })
                .collect(),
            cq_priority,
            resorts: 0,
            queries: 0,
        }
    }

    /// The priority an NCQ's group serves (drives the completion-path
    /// dispatch: per-request for high, batched for low).
    pub fn cq_priority(&self, cq: CqId) -> Priority {
        self.cq_priority[cq.index()]
    }

    /// The priority an NSQ serves.
    pub fn sq_priority(&self, sq: SqId, device: &NvmeDevice) -> Priority {
        self.cq_priority(device.cq_of_sq(sq))
    }

    /// `NQSchedule` (Algorithm 2): selects the NSQ within `prio`'s NQGroup
    /// that best satisfies the criteria. `m` is the MRU decrement set by
    /// troute's calling context (MRU for tenant-based and tagged-outlier
    /// contexts, 1 for per-request outlier queries).
    ///
    /// `policy` supplies the merit functions when a re-sort fires
    /// ([`Policy::ncq_merit`] / [`Policy::nsq_merit`]); the EWMA smoothing,
    /// assignment tie-breaker, and MRU budgeting are nqreg mechanism and
    /// apply under every policy.
    pub fn schedule<P: Policy>(
        &mut self,
        policy: &mut P,
        prio: Priority,
        m: u32,
        device: &NvmeDevice,
        locks: &NsqLockTable,
        proxies: &ProxyTable,
    ) -> SqId {
        self.queries += 1;
        if !self.use_merit {
            // Branch-free round-robin: the cursor counts monotonically and
            // is reduced modulo the flat list length exactly once per pick
            // (the old double-`%` wrap was a second division for nothing).
            let group = &mut self.groups[prio.index()];
            let sq = group.rr_flat[group.rr_cursor % group.rr_flat.len()];
            group.rr_cursor = group.rr_cursor.wrapping_add(1);
            return sq;
        }
        // Step 1: NCQ by IRQ-balancing merit. The MRU-gated recomputation
        // runs *before* taking the top (Algorithm 2 fetches then updates;
        // updating first is functionally equivalent modulo a one-query lag
        // and lets the merit see live assignment counts, so consecutive
        // tenant-based queries spread across NQs as §5.3 intends).
        let group_idx = prio.index();
        self.groups[group_idx].mru -= m as i64;
        if self.groups[group_idx].mru <= 0 {
            self.resort_ncq_heap(policy, group_idx, device, proxies);
        }
        let ncq = self.groups[group_idx]
            .ncq_heap
            .top()
            .expect("priority group has no NCQs");
        // Step 2: NSQ by contention merit within the chosen NCQ.
        let node = &self.ncq_nodes[ncq.index()];
        debug_assert!(!node.nsq_heap.is_empty());
        if node.nsq_heap.len() == 1 {
            // 1:1 binding degenerates: select directly, no scheduling.
            return node.nsq_heap.top().expect("non-empty heap");
        }
        let node = &mut self.ncq_nodes[ncq.index()];
        node.mru -= m as i64;
        if node.mru <= 0 {
            self.resort_nsq_heap(policy, ncq, locks, device, proxies);
        }
        self.ncq_nodes[ncq.index()]
            .nsq_heap
            .top()
            .expect("non-empty heap")
    }

    /// Recomputes the NCQ heap's merits. Cold by design: the MRU budget
    /// exists precisely to keep this off the per-query fast path, so the
    /// hint keeps the resort body out of `schedule`'s hot icache lines.
    #[cold]
    #[inline(never)]
    fn resort_ncq_heap<P: Policy>(
        &mut self,
        policy: &mut P,
        group_idx: usize,
        device: &NvmeDevice,
        proxies: &ProxyTable,
    ) {
        self.resorts += 1;
        let ncq_state = &mut self.ncq_state;
        let ncq_nodes = &self.ncq_nodes;
        self.groups[group_idx].ncq_heap.resort_with(|cq| {
            // Window-delta bookkeeping is straight-line: unconditional
            // loads/stores, with `max(1)` saturations (not `if`s) guarding
            // the divisions inside the merit functions.
            let st = device.cq_stats(cq);
            let state = &mut ncq_state[cq.index()];
            let complete_delta = st.complete_rqs - state.last_complete;
            let irq_delta = st.irqs - state.last_irqs;
            state.last_complete = st.complete_rqs;
            state.last_irqs = st.irqs;
            let assignments: f64 = ncq_nodes[cq.index()]
                .nsq_heap
                .iter()
                .map(|(sq, _)| proxies.get(sq).assignments() as f64)
                .sum::<f64>();
            let merit_k = policy.ncq_merit(&NcqMeritCtx {
                in_flight: st.in_flight_rqs,
                depth: device.cq_depth(cq),
                complete_delta,
                irq_delta,
                assignments,
            });
            state
                .ewma
                .observe(merit_k + assignments * ASSIGNMENT_TIE_WEIGHT)
        });
        self.groups[group_idx].mru = self.mru_init as i64;
    }

    /// Recomputes one NCQ's NSQ heap. Cold for the same reason as
    /// [`Self::resort_ncq_heap`].
    #[cold]
    #[inline(never)]
    fn resort_nsq_heap<P: Policy>(
        &mut self,
        policy: &mut P,
        ncq: CqId,
        locks: &NsqLockTable,
        device: &NvmeDevice,
        proxies: &ProxyTable,
    ) {
        self.resorts += 1;
        let nsq_state = &mut self.nsq_state;
        let node = &mut self.ncq_nodes[ncq.index()];
        node.nsq_heap.resort_with(|sq| {
            // Branch-free like the NCQ pass: `saturating_sub` instead of an
            // underflow check, `max(1)` saturations inside the merit fn.
            let state = &mut nsq_state[sq.index()];
            let lock_total = locks.in_lock_total(sq);
            let submitted = device.sq_stats(sq).submitted_total;
            let lock_delta = lock_total.saturating_sub(state.last_lock_wait);
            let submitted_delta = submitted - state.last_submitted;
            state.last_lock_wait = lock_total;
            state.last_submitted = submitted;
            let proxy = proxies.get(sq);
            let merit_k = policy.nsq_merit(&NsqMeritCtx {
                lock_wait: lock_delta,
                submitted_delta,
                claimed_cores: proxy.nr_claimed_cores(),
                assignments: proxy.assignments(),
            });
            state
                .ewma
                .observe(merit_k + proxy.assignments() as f64 * ASSIGNMENT_TIE_WEIGHT)
        });
        node.mru = self.mru_init as i64;
    }

    /// The smoothing weight in use.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Heap recomputations performed so far.
    pub fn resorts(&self) -> u64 {
        self.resorts
    }

    /// Scheduling queries served so far.
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// NSQs in the given priority group.
    pub fn group_sqs(&self, prio: Priority) -> &[SqId] {
        &self.groups[prio.index()].rr_flat
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::DefaultPolicy;
    use dd_nvme::NvmeConfig;

    fn device(sqs: u16, cqs: u16) -> NvmeDevice {
        let mut cfg = NvmeConfig::sv_m();
        cfg.nr_sqs = sqs;
        cfg.nr_cqs = cqs;
        NvmeDevice::new(cfg, 4)
    }

    fn proxies(device: &NvmeDevice) -> ProxyTable {
        let prios = divide_priorities(device.nr_cqs());
        ProxyTable::new(
            device.nr_sqs(),
            |i| device.cq_of_sq(SqId(i)),
            |i| prios[device.cq_of_sq(SqId(i)).index()],
        )
    }

    #[test]
    fn division_is_equal_halves() {
        let p = divide_priorities(8);
        assert_eq!(p.iter().filter(|p| **p == Priority::High).count(), 4);
        assert_eq!(p[0], Priority::High);
        assert_eq!(p[7], Priority::Low);
    }

    #[test]
    fn single_cq_degenerates_to_shared() {
        let mut pol = DefaultPolicy::default();
        let p = divide_priorities(1);
        assert_eq!(p, vec![Priority::High]);
        let dev = device(2, 1);
        let locks = NsqLockTable::new(2);
        let prox = proxies(&dev);
        let mut reg = NqReg::new(0.8, 16, true, 2, 1, |_| 0);
        // Low-priority scheduling still returns a queue.
        let sq = reg.schedule(&mut pol, Priority::Low, 16, &dev, &locks, &prox);
        assert!(sq.0 < 2);
    }

    #[test]
    fn merit_formulas_match_paper() {
        // NCQ: (in_flight/depth + complete/irqs) * irqs.
        let m = ncq_merit_k(512, 1024, 100, 10);
        assert!((m - (0.5 + 10.0) * 10.0).abs() < 1e-9);
        // NSQ: (in_lock_us / submitted) * claimed.
        let m = nsq_merit_k(SimDuration::from_micros(30), 10, 4);
        assert!((m - 12.0).abs() < 1e-9);
    }

    #[test]
    fn merit_guards_division_by_zero() {
        assert_eq!(ncq_merit_k(0, 1024, 0, 0), 0.0);
        assert_eq!(nsq_merit_k(SimDuration::ZERO, 0, 0), 0.0);
    }

    #[test]
    fn schedule_respects_priority_groups() {
        let mut pol = DefaultPolicy::default();
        let dev = device(8, 8);
        let locks = NsqLockTable::new(8);
        let prox = proxies(&dev);
        let mut reg = NqReg::new(0.8, 4, true, 8, 8, |i| i);
        for _ in 0..32 {
            let h = reg.schedule(&mut pol, Priority::High, 4, &dev, &locks, &prox);
            assert!(h.0 < 4, "high-priority NSQ expected, got {h}");
            let l = reg.schedule(&mut pol, Priority::Low, 4, &dev, &locks, &prox);
            assert!(l.0 >= 4, "low-priority NSQ expected, got {l}");
        }
    }

    #[test]
    fn assignments_spread_tenants() {
        let mut pol = DefaultPolicy::default();
        // Registering tenants (schedule + claim) must not pile everyone on
        // one NSQ: the assignment tie-breaker rotates the heap.
        let dev = device(8, 8);
        let locks = NsqLockTable::new(8);
        let mut prox = proxies(&dev);
        let mut reg = NqReg::new(0.8, 1, true, 8, 8, |i| i);
        let mut used = std::collections::HashSet::new();
        for core in 0..4u16 {
            let sq = reg.schedule(&mut pol, Priority::High, 1, &dev, &locks, &prox);
            prox.get_mut(sq).claim(core);
            used.insert(sq.0);
        }
        assert!(used.len() >= 3, "tenants clumped: {used:?}");
    }

    #[test]
    fn mru_bounds_resorts() {
        let mut pol = DefaultPolicy::default();
        let dev = device(8, 8);
        let locks = NsqLockTable::new(8);
        let prox = proxies(&dev);
        let mut reg = NqReg::new(0.8, 1000, true, 8, 8, |i| i);
        for _ in 0..100 {
            reg.schedule(&mut pol, Priority::High, 1, &dev, &locks, &prox);
        }
        assert_eq!(reg.queries(), 100);
        assert_eq!(reg.resorts(), 0, "MRU=1000 must suppress resorts");
        let mut reg = NqReg::new(0.8, 1, true, 8, 8, |i| i);
        for _ in 0..100 {
            reg.schedule(&mut pol, Priority::High, 1, &dev, &locks, &prox);
        }
        assert!(reg.resorts() >= 100, "MRU=1 must resort every query");
    }

    #[test]
    fn round_robin_fallback_cycles() {
        let mut pol = DefaultPolicy::default();
        let dev = device(8, 8);
        let locks = NsqLockTable::new(8);
        let prox = proxies(&dev);
        let mut reg = NqReg::new(0.8, 4, false, 8, 8, |i| i);
        let picks: Vec<u16> = (0..8)
            .map(|_| reg.schedule(&mut pol, Priority::High, 4, &dev, &locks, &prox).0)
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn contended_nsq_avoided_after_resort() {
        let mut pol = DefaultPolicy::default();
        // WS-M-like fan-out: 8 NSQs on 2 NCQs → NSQ step is non-degenerate.
        let dev = device(8, 2);
        let mut locks = NsqLockTable::new(8);
        let mut prox = proxies(&dev);
        let mut reg = NqReg::new(0.8, 1, true, 8, 2, |i| i % 2);
        // High group = CQ 0 = NSQs {0, 2, 4, 6}. Make NSQ 0 heavily
        // contended and claimed.
        for _ in 0..100 {
            locks.acquire(SqId(0), simkit::SimTime::ZERO, SimDuration::from_micros(5));
        }
        prox.get_mut(SqId(0)).claim(0);
        prox.get_mut(SqId(0)).claim(1);
        // First schedule may still return the stale top; after the forced
        // resort (mru = 1) the contended queue must stop being chosen.
        let _ = reg.schedule(&mut pol, Priority::High, 1, &dev, &locks, &prox);
        for _ in 0..8 {
            let sq = reg.schedule(&mut pol, Priority::High, 1, &dev, &locks, &prox);
            assert_ne!(sq, SqId(0), "contended NSQ must be avoided");
            assert_eq!(sq.0 % 2, 0, "must stay within the high group");
        }
    }

    #[test]
    fn cq_priority_lookup() {
        let reg = NqReg::new(0.8, 4, true, 8, 8, |i| i);
        assert_eq!(reg.cq_priority(CqId(0)), Priority::High);
        assert_eq!(reg.cq_priority(CqId(7)), Priority::Low);
        assert_eq!(reg.group_sqs(Priority::High).len(), 4);
    }
}
