//! troute: the tenant-NQ request router (Algorithm 1).
//!
//! troute performs the multi-tenancy control on the critical I/O path. Per
//! tenant it keeps a *base priority* derived from the ionice class
//! (real-time ⇒ high), a *default NSQ* obtained from nqreg at registration,
//! and — for T-tenants with an *outlier tendency* — a dedicated *outlier
//! NSQ* for their sync/metadata requests. Request routing then reduces to a
//! table lookup for the common cases; only an untagged T-tenant's occasional
//! outlier request pays a per-request nqreg query (`m = 1`).
//!
//! troute also maintains each NSQ's claimed-core bitmap (via the proxies),
//! the contention hint nqreg's NSQ merit consumes.
//!
//! # Paper mapping (§4 "troute", §5.2, Algorithm 1)
//!
//! | This module | Paper concept |
//! |---|---|
//! | [`Troute::base_priority`] | SLA assessment from `ionice` (real-time ⇒ L), §5.2 |
//! | [`Troute::register`] | tenant registration: default-NSQ assignment via a tenant-based nqreg query (`m = MRU`) |
//! | [`Troute::route`] | Algorithm 1's *mechanism* — tenant lookup, profiling, path resolution; the lines 1–9 *decision* itself is [`crate::policy::Policy::route`], with [`crate::policy::DefaultPolicy`] reproducing the paper's exact branches |
//! | [`TenantRoute::outlier_tag`]/`outlier_sq` | the outlier-tendency tag and dedicated outlier NSQ, §5.2 |
//! | [`QueryContext`] | tenant-based (`m = MRU`) vs request-specific (`m = 1`) query contexts, §5.2 |
//! | [`Troute::update_ionice`] | runtime ionice updates re-scheduling the default NSQ (Fig. 14's storm path) |
//! | [`Troute::migrate`] | claimed-core bitmap maintenance across core migrations (Fig. 13's cross-core setting) |
//! | [`RouteStats`] | per-path counters surfaced by `ddsim` and the figure harness |
//!
//! The invariant behind all of it — *no L-request and no outlier request is
//! ever routed to a low-priority NSQ* — is property-tested in
//! `tests/proptests.rs` (`troute_l_requests_never_low_priority`).

use dd_nvme::{IoOpcode, NvmeDevice, SqId};
use simkit::{DenseMap, SimTime};

use blkstack::nsqlock::NsqLockTable;
use blkstack::{Bio, IoPriorityClass, Pid, TaskStruct};

use crate::nproxy::{Priority, ProxyTable};
use crate::nqreg::NqReg;
use crate::policy::{Policy, RouteCtx, RouteDecision};

/// Per-tenant routing state.
#[derive(Clone, Copy, Debug)]
pub struct TenantRoute {
    /// Base priority from the ionice class.
    pub base_prio: Priority,
    /// NSQ serving the tenant's normal requests.
    pub default_sq: SqId,
    /// NSQ serving a tagged T-tenant's outlier requests.
    pub outlier_sq: Option<SqId>,
    /// Whether the tenant currently carries the outlier tag.
    pub outlier_tag: bool,
    /// Core the tenant runs on (for bitmap maintenance).
    pub core: u16,
    /// Profiling counters within the current window.
    normal_count: u64,
    outlier_count: u64,
}

/// The calling context of an nqreg query — determines the MRU decrement
/// (§5.2: tenant-based and tagged-outlier contexts use `m = MRU`, the
/// request-specific context of untagged T-tenants uses `m = 1`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QueryContext {
    /// Default/outlier NSQ assignment for a tenant.
    TenantBased,
    /// One-off query for an untagged T-tenant's outlier request.
    RequestSpecific,
}

/// Routing statistics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RouteStats {
    /// Requests routed via the default NSQ.
    pub default_routes: u64,
    /// Outlier requests routed via a tagged tenant's outlier NSQ.
    pub outlier_routes: u64,
    /// Outlier requests that paid a per-request nqreg query.
    pub per_request_queries: u64,
    /// Tag transitions (off→on and on→off).
    pub tag_changes: u64,
    /// Default-NSQ re-assignments due to ionice updates.
    pub reassignments: u64,
    /// Requests routed via an explicit policy query
    /// ([`RouteDecision::Query`]) — always 0 under the default policy,
    /// which only uses the Algorithm 1 paths above.
    pub policy_queries: u64,
}

/// The request router.
#[derive(Debug)]
pub struct Troute {
    tenants: DenseMap<Pid, TenantRoute>,
    mru: u32,
    profile_window: u64,
    stats: RouteStats,
}

impl Troute {
    /// Creates a router. `mru` is the heap MRU budget (the `m` used for
    /// tenant-based queries); `profile_window` the re-evaluation period of
    /// the outlier tag.
    pub fn new(mru: u32, profile_window: u64) -> Self {
        Troute {
            tenants: DenseMap::new(),
            mru,
            profile_window,
            stats: RouteStats::default(),
        }
    }

    /// Base priority implied by an ionice class.
    pub fn base_priority(ionice: IoPriorityClass) -> Priority {
        if ionice.is_latency_sensitive() {
            Priority::High
        } else {
            Priority::Low
        }
    }

    /// Registers a tenant: assigns its default NSQ with a tenant-based
    /// query and claims its core on the proxy.
    pub fn register<P: Policy>(
        &mut self,
        task: &TaskStruct,
        policy: &mut P,
        nqreg: &mut NqReg,
        device: &NvmeDevice,
        locks: &NsqLockTable,
        proxies: &mut ProxyTable,
    ) {
        let base_prio = Self::base_priority(task.ionice);
        let default_sq = nqreg.schedule(policy, base_prio, self.mru, device, locks, proxies);
        proxies.get_mut(default_sq).claim(task.core);
        self.tenants.insert(
            task.pid,
            TenantRoute {
                base_prio,
                default_sq,
                outlier_sq: None,
                outlier_tag: false,
                core: task.core,
                normal_count: 0,
                outlier_count: 0,
            },
        );
    }

    /// Removes a tenant, releasing its claims.
    pub fn deregister(&mut self, pid: Pid, proxies: &mut ProxyTable) {
        if let Some(route) = self.tenants.remove(pid) {
            self.unclaim(route.default_sq, route.core, proxies);
            if let Some(osq) = route.outlier_sq {
                self.unclaim(osq, route.core, proxies);
            }
        }
    }

    fn core_still_used(&self, sq: SqId, core: u16) -> bool {
        self.tenants
            .values()
            .any(|r| r.core == core && (r.default_sq == sq || r.outlier_sq == Some(sq)))
    }

    fn unclaim(&self, sq: SqId, core: u16, proxies: &mut ProxyTable) {
        // `tenants` no longer contains the departing route at call sites, so
        // remaining claimants are counted correctly.
        let still = self.core_still_used(sq, core);
        proxies.get_mut(sq).unclaim(core, still);
    }

    /// Routing state of a tenant.
    pub fn route_of(&self, pid: Pid) -> Option<&TenantRoute> {
        self.tenants.get(pid)
    }

    /// Handles a runtime ionice change: if the base priority flips, the
    /// default NSQ is re-scheduled (asynchronously to the I/O path in the
    /// kernel; one extra nqreg query here, §5.2).
    pub fn update_ionice<P: Policy>(
        &mut self,
        pid: Pid,
        ionice: IoPriorityClass,
        policy: &mut P,
        nqreg: &mut NqReg,
        device: &NvmeDevice,
        locks: &NsqLockTable,
        proxies: &mut ProxyTable,
    ) {
        let new_prio = Self::base_priority(ionice);
        let Some(route) = self.tenants.get(pid).copied() else {
            return;
        };
        if route.base_prio == new_prio {
            return;
        }
        let new_sq = nqreg.schedule(policy, new_prio, self.mru, device, locks, proxies);
        // Swap claims: remove the tenant's entry view first so the
        // still-used check does not see the stale route.
        let r = self.tenants.remove(pid).expect("checked above");
        self.unclaim(r.default_sq, r.core, proxies);
        let mut r = r;
        r.base_prio = new_prio;
        r.default_sq = new_sq;
        // An L-tenant (or ex-T-tenant) has no use for an outlier NSQ.
        if new_prio == Priority::High {
            if let Some(osq) = r.outlier_sq.take() {
                self.unclaim(osq, r.core, proxies);
            }
            r.outlier_tag = false;
        }
        proxies.get_mut(new_sq).claim(r.core);
        self.tenants.insert(pid, r);
        self.stats.reassignments += 1;
    }

    /// Handles a tenant migration to another core: the claimed-core bitmaps
    /// move with it.
    pub fn migrate(&mut self, pid: Pid, new_core: u16, proxies: &mut ProxyTable) {
        let Some(route) = self.tenants.get(pid).copied() else {
            return;
        };
        if route.core == new_core {
            return;
        }
        let mut r = self.tenants.remove(pid).expect("checked above");
        self.unclaim(r.default_sq, r.core, proxies);
        if let Some(osq) = r.outlier_sq {
            self.unclaim(osq, r.core, proxies);
        }
        r.core = new_core;
        proxies.get_mut(r.default_sq).claim(new_core);
        if let Some(osq) = r.outlier_sq {
            proxies.get_mut(osq).claim(new_core);
        }
        self.tenants.insert(pid, r);
    }

    /// Routes one request, returning the target NSQ.
    ///
    /// The *decision* — which of the three paths the request takes — comes
    /// from [`Policy::route`] (Algorithm 1 under
    /// [`crate::policy::DefaultPolicy`]); troute resolves it against the
    /// tenant table. The outlier-tendency profiler runs for every T-tenant
    /// request regardless of the decision, so the tenant's tag state stays
    /// policy-independent: crossing the tendency threshold assigns (or
    /// drops) the tenant's outlier NSQ.
    pub fn route<P: Policy>(
        &mut self,
        bio: &Bio,
        now: SimTime,
        policy: &mut P,
        nqreg: &mut NqReg,
        device: &NvmeDevice,
        locks: &NsqLockTable,
        proxies: &mut ProxyTable,
    ) -> SqId {
        let route = self
            .tenants
            .get_mut(bio.tenant)
            .expect("routing for unregistered tenant");
        let is_outlier = bio.flags.is_outlier();
        let decision = policy.route(&RouteCtx {
            base_prio: route.base_prio,
            outlier: is_outlier,
            write: bio.op != IoOpcode::Read,
            bytes: bio.bytes,
            issued_at: bio.issued_at,
            now,
        });
        // T-tenant: profile the request mix (mechanism — runs under every
        // policy; L-tenants are never tagged, matching Algorithm 1's
        // lines 1-2 early exit).
        if route.base_prio == Priority::Low {
            if is_outlier {
                route.outlier_count += 1;
            } else {
                route.normal_count += 1;
            }
            let total = route.outlier_count + route.normal_count;
            if total.is_multiple_of(self.profile_window) {
                self.reevaluate_tag(bio.tenant, policy, nqreg, device, locks, proxies);
            }
        }
        let route = self.tenants.get(bio.tenant).expect("still registered");
        match decision {
            // Lines 1-3: the table-lookup fast path.
            RouteDecision::Default => {
                self.stats.default_routes += 1;
                route.default_sq
            }
            // Lines 4-9: outlier path — dedicated NSQ when tagged, else a
            // request-specific high-priority query (m = 1).
            RouteDecision::Outlier => {
                if let (true, Some(osq)) = (route.outlier_tag, route.outlier_sq) {
                    self.stats.outlier_routes += 1;
                    osq
                } else {
                    self.stats.per_request_queries += 1;
                    nqreg.schedule(policy, Priority::High, 1, device, locks, proxies)
                }
            }
            // Beyond Algorithm 1: an alternative policy asked for a fresh
            // nqreg query with its own priority and MRU decrement.
            RouteDecision::Query { prio, m } => {
                self.stats.policy_queries += 1;
                nqreg.schedule(policy, prio, m, device, locks, proxies)
            }
        }
    }

    /// Re-evaluates a T-tenant's outlier tendency: tagged when outlier
    /// requests are within the same order of magnitude as normal ones
    /// (outliers × 10 ≥ normals, §5.2).
    fn reevaluate_tag<P: Policy>(
        &mut self,
        pid: Pid,
        policy: &mut P,
        nqreg: &mut NqReg,
        device: &NvmeDevice,
        locks: &NsqLockTable,
        proxies: &mut ProxyTable,
    ) {
        let route = self.tenants.get(pid).copied().expect("registered");
        let tendency = route.outlier_count * 10 >= route.normal_count && route.outlier_count > 0;
        if tendency == route.outlier_tag {
            // Reset the window counters and keep the tag.
            let r = self.tenants.get_mut(pid).expect("registered");
            r.normal_count = 0;
            r.outlier_count = 0;
            return;
        }
        self.stats.tag_changes += 1;
        if tendency {
            // Tag on: assign an outlier NSQ (tenant-based context).
            let osq = nqreg.schedule(policy, Priority::High, self.mru, device, locks, proxies);
            proxies.get_mut(osq).claim(route.core);
            let r = self.tenants.get_mut(pid).expect("registered");
            r.outlier_tag = true;
            r.outlier_sq = Some(osq);
            r.normal_count = 0;
            r.outlier_count = 0;
        } else {
            // Tag off: drop the outlier NSQ.
            let mut r = self.tenants.remove(pid).expect("registered");
            if let Some(osq) = r.outlier_sq.take() {
                self.unclaim(osq, r.core, proxies);
            }
            r.outlier_tag = false;
            r.normal_count = 0;
            r.outlier_count = 0;
            self.tenants.insert(pid, r);
        }
    }

    /// Routing statistics.
    pub fn stats(&self) -> RouteStats {
        self.stats
    }

    /// Registered tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// True when no tenants are registered.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nqreg::divide_priorities;
    use crate::policy::DefaultPolicy;
    use blkstack::bio::{BioId, ReqFlags};
    use dd_nvme::{IoOpcode, NamespaceId, NvmeConfig};
    use simkit::SimTime;

    struct Fixture {
        device: NvmeDevice,
        locks: NsqLockTable,
        proxies: ProxyTable,
        nqreg: NqReg,
        troute: Troute,
        pol: DefaultPolicy,
    }

    fn fixture() -> Fixture {
        let mut cfg = NvmeConfig::sv_m();
        cfg.nr_sqs = 8;
        cfg.nr_cqs = 8;
        let device = NvmeDevice::new(cfg, 4);
        let locks = NsqLockTable::new(8);
        let prios = divide_priorities(8);
        let proxies = ProxyTable::new(
            8,
            |i| device.cq_of_sq(SqId(i)),
            |i| prios[device.cq_of_sq(SqId(i)).index()],
        );
        let nqreg = NqReg::new(0.8, 4, true, 8, 8, |i| i);
        Fixture {
            device,
            locks,
            proxies,
            nqreg,
            troute: Troute::new(4, 8),
            pol: DefaultPolicy::default(),
        }
    }

    fn task(pid: u64, core: u16, ionice: IoPriorityClass) -> TaskStruct {
        TaskStruct::new(Pid(pid), core, ionice, NamespaceId(1), "x")
    }

    fn bio(tenant: u64, flags: ReqFlags) -> Bio {
        Bio {
            id: BioId(0),
            tenant: Pid(tenant),
            core: 0,
            nsid: NamespaceId(1),
            op: IoOpcode::Read,
            offset_blocks: 0,
            bytes: 4096,
            flags,
            issued_at: SimTime::ZERO,
        }
    }

    #[test]
    fn l_tenant_gets_high_priority_default() {
        let mut f = fixture();
        f.troute.register(
            &task(1, 0, IoPriorityClass::RealTime),
            &mut f.pol,
            &mut f.nqreg,
            &f.device,
            &f.locks,
            &mut f.proxies,
        );
        let r = f.troute.route_of(Pid(1)).unwrap();
        assert_eq!(r.base_prio, Priority::High);
        assert!(r.default_sq.0 < 4, "L default NSQ in high group");
        assert!(f.proxies.get(r.default_sq).claims_core(0));
    }

    #[test]
    fn t_tenant_gets_low_priority_default() {
        let mut f = fixture();
        f.troute.register(
            &task(2, 1, IoPriorityClass::BestEffort),
            &mut f.pol,
            &mut f.nqreg,
            &f.device,
            &f.locks,
            &mut f.proxies,
        );
        let r = f.troute.route_of(Pid(2)).unwrap();
        assert_eq!(r.base_prio, Priority::Low);
        assert!(r.default_sq.0 >= 4, "T default NSQ in low group");
    }

    #[test]
    fn l_requests_always_route_default() {
        let mut f = fixture();
        f.troute.register(
            &task(1, 0, IoPriorityClass::RealTime),
            &mut f.pol,
            &mut f.nqreg,
            &f.device,
            &f.locks,
            &mut f.proxies,
        );
        let def = f.troute.route_of(Pid(1)).unwrap().default_sq;
        for flags in [ReqFlags::NONE, ReqFlags::SYNC, ReqFlags::META] {
            let sq = f.troute.route(
                &bio(1, flags),
                SimTime::ZERO,
                &mut f.pol,
                &mut f.nqreg,
                &f.device,
                &f.locks,
                &mut f.proxies,
            );
            assert_eq!(sq, def);
        }
    }

    #[test]
    fn t_outlier_requests_route_high_priority() {
        let mut f = fixture();
        f.troute.register(
            &task(2, 0, IoPriorityClass::BestEffort),
            &mut f.pol,
            &mut f.nqreg,
            &f.device,
            &f.locks,
            &mut f.proxies,
        );
        // Untagged tenant's sync request: per-request high-priority query.
        let sq = f.troute.route(
            &bio(2, ReqFlags::SYNC),
            SimTime::ZERO,
            &mut f.pol,
            &mut f.nqreg,
            &f.device,
            &f.locks,
            &mut f.proxies,
        );
        assert!(sq.0 < 4, "outlier must land in the high group, got {sq}");
        assert_eq!(f.troute.stats().per_request_queries, 1);
        // Normal request: default (low) NSQ.
        let sq = f.troute.route(
            &bio(2, ReqFlags::NONE),
            SimTime::ZERO,
            &mut f.pol,
            &mut f.nqreg,
            &f.device,
            &f.locks,
            &mut f.proxies,
        );
        assert!(sq.0 >= 4);
    }

    #[test]
    fn outlier_tendency_earns_tag_and_outlier_nsq() {
        let mut f = fixture();
        f.troute.register(
            &task(2, 0, IoPriorityClass::BestEffort),
            &mut f.pol,
            &mut f.nqreg,
            &f.device,
            &f.locks,
            &mut f.proxies,
        );
        // 50/50 outlier mix: well past the order-of-magnitude threshold.
        for i in 0..32 {
            let flags = if i % 2 == 0 {
                ReqFlags::SYNC
            } else {
                ReqFlags::NONE
            };
            f.troute.route(
                &bio(2, flags),
                SimTime::ZERO,
                &mut f.pol,
                &mut f.nqreg,
                &f.device,
                &f.locks,
                &mut f.proxies,
            );
        }
        let r = f.troute.route_of(Pid(2)).unwrap();
        assert!(r.outlier_tag, "tenant must be tagged");
        let osq = r.outlier_sq.expect("tagged tenant has outlier NSQ");
        assert!(osq.0 < 4, "outlier NSQ in high group");
        // Tagged outliers route to the outlier NSQ without new queries.
        let before = f.troute.stats().per_request_queries;
        let sq = f.troute.route(
            &bio(2, ReqFlags::META),
            SimTime::ZERO,
            &mut f.pol,
            &mut f.nqreg,
            &f.device,
            &f.locks,
            &mut f.proxies,
        );
        assert_eq!(sq, osq);
        assert_eq!(f.troute.stats().per_request_queries, before);
    }

    #[test]
    fn rare_outliers_do_not_earn_tag() {
        let mut f = fixture();
        f.troute.register(
            &task(2, 0, IoPriorityClass::BestEffort),
            &mut f.pol,
            &mut f.nqreg,
            &f.device,
            &f.locks,
            &mut f.proxies,
        );
        // 1 outlier per 64 normals: below the threshold.
        for i in 0..128 {
            let flags = if i % 64 == 0 {
                ReqFlags::SYNC
            } else {
                ReqFlags::NONE
            };
            f.troute.route(
                &bio(2, flags),
                SimTime::ZERO,
                &mut f.pol,
                &mut f.nqreg,
                &f.device,
                &f.locks,
                &mut f.proxies,
            );
        }
        assert!(!f.troute.route_of(Pid(2)).unwrap().outlier_tag);
    }

    #[test]
    fn ionice_flip_reassigns_default() {
        let mut f = fixture();
        f.troute.register(
            &task(2, 0, IoPriorityClass::BestEffort),
            &mut f.pol,
            &mut f.nqreg,
            &f.device,
            &f.locks,
            &mut f.proxies,
        );
        let old = f.troute.route_of(Pid(2)).unwrap().default_sq;
        f.troute.update_ionice(
            Pid(2),
            IoPriorityClass::RealTime,
            &mut f.pol,
            &mut f.nqreg,
            &f.device,
            &f.locks,
            &mut f.proxies,
        );
        let r = f.troute.route_of(Pid(2)).unwrap();
        assert_eq!(r.base_prio, Priority::High);
        assert!(r.default_sq.0 < 4);
        assert_ne!(r.default_sq, old);
        assert_eq!(f.troute.stats().reassignments, 1);
        assert_eq!(f.proxies.get(old).assignments(), 0, "old claim released");
        // No-op update does not re-schedule.
        f.troute.update_ionice(
            Pid(2),
            IoPriorityClass::RealTime,
            &mut f.pol,
            &mut f.nqreg,
            &f.device,
            &f.locks,
            &mut f.proxies,
        );
        assert_eq!(f.troute.stats().reassignments, 1);
    }

    #[test]
    fn migration_moves_claims() {
        let mut f = fixture();
        f.troute.register(
            &task(1, 0, IoPriorityClass::RealTime),
            &mut f.pol,
            &mut f.nqreg,
            &f.device,
            &f.locks,
            &mut f.proxies,
        );
        let sq = f.troute.route_of(Pid(1)).unwrap().default_sq;
        f.troute.migrate(Pid(1), 3, &mut f.proxies);
        assert!(!f.proxies.get(sq).claims_core(0));
        assert!(f.proxies.get(sq).claims_core(3));
        assert_eq!(f.troute.route_of(Pid(1)).unwrap().core, 3);
    }

    #[test]
    fn deregister_releases_everything() {
        let mut f = fixture();
        f.troute.register(
            &task(2, 0, IoPriorityClass::BestEffort),
            &mut f.pol,
            &mut f.nqreg,
            &f.device,
            &f.locks,
            &mut f.proxies,
        );
        let sq = f.troute.route_of(Pid(2)).unwrap().default_sq;
        f.troute.deregister(Pid(2), &mut f.proxies);
        assert!(f.troute.is_empty());
        assert_eq!(f.proxies.get(sq).assignments(), 0);
    }

    #[test]
    fn shared_core_claims_persist() {
        let mut f = fixture();
        // Two L-tenants on core 0: if they share a default NSQ, removing one
        // must keep the core bit set.
        f.troute.register(
            &task(1, 0, IoPriorityClass::RealTime),
            &mut f.pol,
            &mut f.nqreg,
            &f.device,
            &f.locks,
            &mut f.proxies,
        );
        f.troute.register(
            &task(2, 0, IoPriorityClass::RealTime),
            &mut f.pol,
            &mut f.nqreg,
            &f.device,
            &f.locks,
            &mut f.proxies,
        );
        let sq1 = f.troute.route_of(Pid(1)).unwrap().default_sq;
        let sq2 = f.troute.route_of(Pid(2)).unwrap().default_sq;
        f.troute.deregister(Pid(1), &mut f.proxies);
        if sq1 == sq2 {
            assert!(f.proxies.get(sq2).claims_core(0));
        } else {
            assert!(!f.proxies.get(sq1).claims_core(0));
            assert!(f.proxies.get(sq2).claims_core(0));
        }
    }
}
