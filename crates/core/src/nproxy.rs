//! The nproxy layer of blex: per-NSQ state exposed to the block layer.
//!
//! NSQs belong to the NVMe driver; exposing them directly to the block layer
//! would break the kernel's module boundary. blex instead interposes one
//! [`Nproxy`] per NSQ — a lightweight wrapper carrying the queue's identity
//! (its paired NCQ), the priority nqreg designated it to serve, and the
//! bitmap of CPU cores claiming frequent use of it (the contention hint
//! troute maintains for NQ scheduling, §5.2). Proxies are device-level and
//! therefore uniform across namespaces — the root of Daredevil's
//! multi-namespace support.
//!
//! # Paper mapping (§4 "blex", §5.1)
//!
//! | This module | Paper concept |
//! |---|---|
//! | [`Nproxy`] | the per-NSQ proxy blex interposes between block layer and driver (§4, Fig. 4) |
//! | [`Nproxy::cq`] | the implicitly observable NSQ→NCQ pairing (§5.1) |
//! | [`Nproxy::prio`] | the SLA designation nqreg assigns at init (§5.3, Alg. 2 input) |
//! | [`Nproxy::claim`]/[`Nproxy::nr_claimed_cores`] | `nq.nr_claimed_cores`, the contention hint of Algorithm 2 line 6 |
//! | [`Priority`] | the two SLA classes: L (latency-sensitive) / T (throughput-oriented), §2 |
//! | [`ProxyTable`] | the device-level proxy array giving every core a path to every NSQ (§4) — uniform across namespaces, hence multi-namespace support (§6, Fig. 10) |

use dd_nvme::{CqId, SqId};

/// The SLA a queue serves.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Priority {
    /// Serves L-requests (latency-sensitive).
    High,
    /// Serves T-requests (throughput-oriented).
    Low,
}

impl Priority {
    /// Dense index for per-priority arrays.
    pub fn index(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Low => 1,
        }
    }

    /// Both priorities, high first.
    pub const ALL: [Priority; 2] = [Priority::High, Priority::Low];
}

/// One NSQ's proxy.
#[derive(Clone, Copy, Debug)]
pub struct Nproxy {
    /// The NSQ this proxy wraps.
    pub sq: SqId,
    /// The NCQ paired with the NSQ (implicitly observable, §5.1).
    pub cq: CqId,
    /// The SLA this NSQ serves, designated by nqreg.
    pub prio: Priority,
    /// Bitmap of cores whose tenants use this NSQ as default/outlier NSQ.
    claimed_cores: u128,
    /// Number of tenant assignments currently pointing here (used as the
    /// deterministic tie-breaker that spreads fresh tenants over idle NQs).
    assignments: u32,
}

impl Nproxy {
    /// Creates a proxy.
    pub fn new(sq: SqId, cq: CqId, prio: Priority) -> Self {
        Nproxy {
            sq,
            cq,
            prio,
            claimed_cores: 0,
            assignments: 0,
        }
    }

    /// A tenant on `core` starts using this NSQ as default/outlier NSQ.
    pub fn claim(&mut self, core: u16) {
        debug_assert!(core < 128, "claimed-core bitmap supports 128 cores");
        self.claimed_cores |= 1u128 << core;
        self.assignments += 1;
    }

    /// A tenant on `core` stops using this NSQ. `core_still_used` tells
    /// whether other tenants on the same core still claim it (the bitmap bit
    /// only clears when the last claimant on that core leaves).
    pub fn unclaim(&mut self, core: u16, core_still_used: bool) {
        debug_assert!(self.assignments > 0, "unclaim without claim");
        self.assignments -= 1;
        if !core_still_used {
            self.claimed_cores &= !(1u128 << core);
        }
    }

    /// Number of distinct cores claiming this NSQ (`nq.nr_claimed_cores` in
    /// Algorithm 2).
    pub fn nr_claimed_cores(&self) -> u32 {
        self.claimed_cores.count_ones()
    }

    /// Number of tenant assignments pointing here.
    pub fn assignments(&self) -> u32 {
        self.assignments
    }

    /// True if `core` is in the claimed bitmap.
    pub fn claims_core(&self, core: u16) -> bool {
        self.claimed_cores & (1u128 << core) != 0
    }
}

/// All proxies of a device, indexed by NSQ id.
#[derive(Clone, Debug)]
pub struct ProxyTable {
    proxies: Vec<Nproxy>,
}

impl ProxyTable {
    /// Builds proxies for `nr_sqs` NSQs. `cq_of` supplies each NSQ's paired
    /// NCQ; `prio_of` the priority nqreg designated.
    pub fn new(
        nr_sqs: u16,
        mut cq_of: impl FnMut(u16) -> CqId,
        mut prio_of: impl FnMut(u16) -> Priority,
    ) -> Self {
        ProxyTable {
            proxies: (0..nr_sqs)
                .map(|i| Nproxy::new(SqId(i), cq_of(i), prio_of(i)))
                .collect(),
        }
    }

    /// Number of proxies.
    pub fn len(&self) -> usize {
        self.proxies.len()
    }

    /// True when empty (never, for a valid device).
    pub fn is_empty(&self) -> bool {
        self.proxies.is_empty()
    }

    /// Immutable proxy access.
    pub fn get(&self, sq: SqId) -> &Nproxy {
        &self.proxies[sq.index()]
    }

    /// Mutable proxy access.
    pub fn get_mut(&mut self, sq: SqId) -> &mut Nproxy {
        &mut self.proxies[sq.index()]
    }

    /// Iterates all proxies.
    pub fn iter(&self) -> impl Iterator<Item = &Nproxy> {
        self.proxies.iter()
    }

    /// NSQs serving a priority.
    pub fn sqs_with_priority(&self, prio: Priority) -> Vec<SqId> {
        self.proxies
            .iter()
            .filter(|p| p.prio == prio)
            .map(|p| p.sq)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> ProxyTable {
        ProxyTable::new(
            4,
            |i| CqId(i / 2),
            |i| if i < 2 { Priority::High } else { Priority::Low },
        )
    }

    #[test]
    fn construction_maps_pairings() {
        let t = table();
        assert_eq!(t.len(), 4);
        assert_eq!(t.get(SqId(3)).cq, CqId(1));
        assert_eq!(t.get(SqId(0)).prio, Priority::High);
        assert_eq!(t.get(SqId(2)).prio, Priority::Low);
    }

    #[test]
    fn priority_partition() {
        let t = table();
        assert_eq!(t.sqs_with_priority(Priority::High), vec![SqId(0), SqId(1)]);
        assert_eq!(t.sqs_with_priority(Priority::Low), vec![SqId(2), SqId(3)]);
    }

    #[test]
    fn claim_bitmap_counts_distinct_cores() {
        let mut t = table();
        let p = t.get_mut(SqId(0));
        p.claim(1);
        p.claim(1); // Second tenant on the same core.
        p.claim(3);
        assert_eq!(p.nr_claimed_cores(), 2);
        assert_eq!(p.assignments(), 3);
        assert!(p.claims_core(1));
        assert!(!p.claims_core(2));
    }

    #[test]
    fn unclaim_clears_bit_only_when_last() {
        let mut t = table();
        let p = t.get_mut(SqId(0));
        p.claim(5);
        p.claim(5);
        p.unclaim(5, true);
        assert!(p.claims_core(5), "another tenant still claims core 5");
        p.unclaim(5, false);
        assert!(!p.claims_core(5));
        assert_eq!(p.assignments(), 0);
    }

    #[test]
    fn priority_indices() {
        assert_eq!(Priority::High.index(), 0);
        assert_eq!(Priority::Low.index(), 1);
    }
}
