//! Daredevil: a flexible multi-tenant kernel storage stack (EuroSys '25).
//!
//! This crate is the paper's primary contribution, rebuilt on the simulated
//! substrate. It decouples the static core→NQ bindings of blk-mq and routes
//! every I/O request to an NVMe submission queue matching its SLA:
//!
//! * [`nproxy`] — the proxy layer of **blex**, the decoupled block layer:
//!   one lightweight wrapper per NSQ exposing its state (priority, paired
//!   NCQ, claimed-core bitmap) to the block layer without breaking the
//!   block-layer/driver module boundary (§5.1);
//! * [`troute`] — the tenant-NQ request router: assesses tenant SLAs from
//!   ionice, profiles T-tenants for *outlier* (sync/metadata) requests, and
//!   routes per Algorithm 1 (§5.2);
//! * [`nqreg`] — the NQ regulator: maintains priority NQGroups over the NQ
//!   heterogeneity, schedules NSQs with two-step merit min-heaps under the
//!   MRU update policy (Algorithm 2), and dispatches SLA-aware I/O service
//!   routines (§5.3);
//! * [`stack_impl`] — [`stack_impl::DaredevilStack`], wiring the three
//!   components into a [`blkstack::StorageStack`], with the `dare-base` /
//!   `dare-sched` / `dare-full` ablation variants of the paper's §7.3;
//! * [`policy`] — the programmable policy layer: the routing, merit, and
//!   batching decisions of Algorithms 1/2 and §5.3 behind one documented
//!   [`policy::Policy`] trait, with the paper's behaviour as
//!   [`policy::DefaultPolicy`] and three pluggable alternatives
//!   (`deadline`, `sizeclass`, `fairshare`).
//!
//! # Quick start
//!
//! ```
//! use daredevil::{DaredevilConfig, DaredevilStack};
//!
//! // A dare-full stack for a 4-core host over a 64-NSQ device.
//! let stack = DaredevilStack::new(DaredevilConfig::default(), 4, 64, 64, |sq| sq % 64);
//! assert_eq!(blkstack::StorageStack::name(&stack), "daredevil");
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod nproxy;
pub mod nqreg;
pub mod policy;
pub mod stack_impl;
pub mod troute;

pub use config::{DaredevilConfig, Variant};
pub use nproxy::{Nproxy, Priority, ProxyTable};
pub use nqreg::{ncq_merit_k, nsq_merit_k, NqReg};
pub use policy::{CompletionMode, DoorbellMode, Policy, PolicyKind, PolicySpec};
pub use stack_impl::DaredevilStack;
pub use troute::{RouteStats, Troute};
