//! The Daredevil storage stack: blex + troute + nqreg wired together.
//!
//! The submission path replaces blk-mq's static SQ→HQ→NQ walk with a routing
//! decision (`troute.route`, Algorithm 1) per request: any core can submit
//! to any NSQ, which is full connectivity between cores and NQs. The
//! completion path dispatches per NCQ priority: high-priority NCQs get the
//! per-request fast path, low-priority NCQs the kernel-default batched path
//! (§5.3's SLA-aware I/O service dispatching).
//!
//! One modelling note: entries pushed within a single submission call all
//! become device-visible at the call's instant, so the immediate-vs-batched
//! *doorbell* half of the dispatching shows up as CPU cost (one MMIO write
//! per L-request) rather than visibility timing; the completion half carries
//! the latency effect, matching where the paper's gains come from.

use dd_nvme::command::HostTag;
use dd_nvme::spec::CommandId;
use dd_nvme::{CqId, NvmeCommand, SqId};
use simkit::SimDuration;

use blkstack::nsqlock::NsqLockTable;
use blkstack::reqmap::RequestMap;
use blkstack::split::{split_extents, SplitConfig};
use blkstack::stack::{
    process_cqes, trace_enqueued, trace_routed, ParkedCommands, RedriveGuard, StackEnv,
    StackStats, StorageStack,
};
use blkstack::{Bio, Capabilities, IoPriorityClass, Pid, TaskStruct};

use crate::config::{DaredevilConfig, Variant};
use crate::nproxy::{Priority, ProxyTable};
use crate::nqreg::{divide_priorities, NqReg};
use crate::policy::{DoorbellCtx, DoorbellMode, Policy, PolicyKind, ReapCtx};
use crate::troute::{RouteStats, Troute};

/// Arena wrapper for the per-NSQ staging buffers: the blanket
/// `ArenaReset for Vec<T>` would drop the inner `Vec`s (and their warm
/// capacities) on park, so this reset empties each inner buffer while
/// keeping both the outer spine and the inner allocations.
#[derive(Default)]
struct SqBufs(Vec<Vec<NvmeCommand>>);

impl simkit::ArenaReset for SqBufs {
    fn arena_reset(&mut self) {
        for b in &mut self.0 {
            b.clear();
        }
    }
}

/// The Daredevil kernel storage stack.
///
/// Generic over the scheduling [`Policy`] (static dispatch — the policy's
/// decision hooks inline into the hot path). The default type parameter is
/// [`PolicyKind`], the enum of built-in policies, so plain `DaredevilStack`
/// holds whatever `cfg.policy` selects; custom policies plug in through
/// [`DaredevilStack::with_policy`].
pub struct DaredevilStack<P: Policy = PolicyKind> {
    cfg: DaredevilConfig,
    policy: P,
    nqreg: NqReg,
    troute: Troute,
    proxies: ProxyTable,
    locks: NsqLockTable,
    reqmap: RequestMap,
    parked: ParkedCommands,
    redrive: RedriveGuard,
    split: SplitConfig,
    stats: StackStats,
    irq_policy_configured: bool,
    /// Recycled per-NSQ command staging buffers (indexed by `SqId`); each
    /// submit call drains the buffers it touched back to empty, keeping the
    /// capacity for the next call.
    sq_bufs: Vec<Vec<NvmeCommand>>,
    /// NSQs touched by the current submit call, in first-touch order (the
    /// dispatch order the old per-call `Vec<(SqId, Vec<_>)>` produced).
    active_sqs: Vec<SqId>,
    /// Recycled ISR scratch for drained CQEs.
    cqe_scratch: Vec<dd_nvme::CqEntry>,
}

impl DaredevilStack<PolicyKind> {
    /// Builds the stack over a device with `nr_sqs` NSQs and `nr_cqs` NCQs
    /// where NSQ `i` pairs NCQ `cq_of(i)`. `nr_cores` is accepted for parity
    /// with the other stacks (Daredevil's routing is core-count independent).
    /// The policy is the built-in one `cfg.policy` names.
    ///
    /// # Panics
    ///
    /// Panics on an invalid [`DaredevilConfig`].
    pub fn new(
        cfg: DaredevilConfig,
        nr_cores: u16,
        nr_sqs: u16,
        nr_cqs: u16,
        cq_of: impl FnMut(u16) -> u16,
    ) -> Self {
        let policy = PolicyKind::from_config(&cfg);
        Self::with_policy(cfg, policy, nr_cores, nr_sqs, nr_cqs, cq_of)
    }

    /// Convenience constructor from a device handle.
    pub fn for_device(cfg: DaredevilConfig, nr_cores: u16, device: &dd_nvme::NvmeDevice) -> Self {
        let nr_cqs = device.nr_cqs();
        Self::new(cfg, nr_cores, device.nr_sqs(), nr_cqs, move |sq| {
            sq % nr_cqs
        })
    }
}

impl<P: Policy> DaredevilStack<P> {
    /// Builds the stack with an explicit (possibly custom) policy — the
    /// static-dispatch entry point of the policy layer; see the
    /// [`crate::policy`] module docs for a worked example.
    ///
    /// # Panics
    ///
    /// Panics on an invalid [`DaredevilConfig`].
    pub fn with_policy(
        cfg: DaredevilConfig,
        policy: P,
        _nr_cores: u16,
        nr_sqs: u16,
        nr_cqs: u16,
        mut cq_of: impl FnMut(u16) -> u16,
    ) -> Self {
        cfg.validate().expect("invalid Daredevil config");
        let use_merit = cfg.variant != Variant::Base;
        let pairing: Vec<u16> = (0..nr_sqs).map(&mut cq_of).collect();
        let nqreg = NqReg::new(cfg.alpha, cfg.mru, use_merit, nr_sqs, nr_cqs, |sq| {
            pairing[sq as usize]
        });
        let prios = divide_priorities(nr_cqs);
        let proxies = ProxyTable::new(
            nr_sqs,
            |i| CqId(pairing[i as usize]),
            |i| prios[pairing[i as usize] as usize],
        );
        DaredevilStack {
            troute: Troute::new(cfg.mru, cfg.profile_window),
            nqreg,
            proxies,
            policy,
            locks: NsqLockTable::new(nr_sqs),
            reqmap: RequestMap::new(),
            parked: ParkedCommands::new(),
            redrive: RedriveGuard::new(),
            split: SplitConfig::default(),
            stats: StackStats::default(),
            irq_policy_configured: false,
            sq_bufs: (0..nr_sqs).map(|_| Vec::new()).collect(),
            active_sqs: Vec::new(),
            cqe_scratch: Vec::new(),
            cfg,
        }
    }

    /// Convenience constructor from a device handle, with an explicit
    /// policy.
    pub fn with_policy_for_device(
        cfg: DaredevilConfig,
        policy: P,
        nr_cores: u16,
        device: &dd_nvme::NvmeDevice,
    ) -> Self {
        let nr_cqs = device.nr_cqs();
        Self::with_policy(cfg, policy, nr_cores, device.nr_sqs(), nr_cqs, move |sq| {
            sq % nr_cqs
        })
    }

    /// The active policy (read-only introspection).
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// The ablation variant in use.
    pub fn variant(&self) -> Variant {
        self.cfg.variant
    }

    /// Router statistics (Fig. 14 inputs).
    pub fn troute_stats(&self) -> RouteStats {
        self.troute.stats()
    }

    /// NQ-scheduler statistics.
    pub fn nqreg_resorts(&self) -> u64 {
        self.nqreg.resorts()
    }

    /// The proxy table (read-only introspection for tests and benches).
    pub fn proxies(&self) -> &ProxyTable {
        &self.proxies
    }

    /// The router (read-only introspection).
    pub fn troute(&self) -> &Troute {
        &self.troute
    }

    /// SLA-aware interrupt policy (part of the I/O service dispatching of
    /// §5.3 applied to device features): when the device coalesces
    /// interrupts, the full variant opts the high-priority NCQs out —
    /// aggregation is throughput machinery, exactly wrong for L-requests.
    fn configure_irq_policy(&mut self, device: &mut dd_nvme::NvmeDevice) {
        if self.irq_policy_configured || self.cfg.variant != Variant::Full {
            return;
        }
        self.irq_policy_configured = true;
        if device.config().irq_coalescing.is_none() {
            return;
        }
        for cq in 0..device.nr_cqs() {
            if self.nqreg.cq_priority(CqId(cq)) == Priority::High {
                device.set_cq_coalescing(CqId(cq), false);
            }
        }
    }
}

impl<P: Policy> StorageStack for DaredevilStack<P> {
    fn name(&self) -> &'static str {
        // The paper's policy keeps the established variant names; an
        // alternative policy names the stack after itself.
        match (self.policy.name(), self.cfg.variant) {
            ("default", Variant::Base) => "dare-base",
            ("default", Variant::Sched) => "dare-sched",
            ("default", Variant::Full) => "daredevil",
            ("deadline", _) => "dare-deadline",
            ("sizeclass", _) => "dare-sizeclass",
            ("fairshare", _) => "dare-fairshare",
            (other, _) => other,
        }
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::daredevil()
    }

    fn register_tenant(&mut self, task: &TaskStruct, env: &mut StackEnv<'_>) {
        self.configure_irq_policy(env.device);
        self.troute.register(
            task,
            &mut self.policy,
            &mut self.nqreg,
            env.device,
            &self.locks,
            &mut self.proxies,
        );
    }

    fn deregister_tenant(&mut self, pid: Pid, _env: &mut StackEnv<'_>) {
        self.troute.deregister(pid, &mut self.proxies);
    }

    fn update_ionice(&mut self, pid: Pid, class: IoPriorityClass, env: &mut StackEnv<'_>) {
        self.troute.update_ionice(
            pid,
            class,
            &mut self.policy,
            &mut self.nqreg,
            env.device,
            &self.locks,
            &mut self.proxies,
        );
    }

    fn migrate_tenant(&mut self, pid: Pid, core: u16, _env: &mut StackEnv<'_>) {
        self.troute.migrate(pid, core, &mut self.proxies);
    }

    fn reserve(&mut self, hint: usize) {
        self.reqmap.reserve(hint);
        self.cqe_scratch.reserve(hint);
    }

    fn park_buffers(&mut self, arena: &mut simkit::RunArena) {
        use blkstack::stack::arena_tags;
        arena.put(arena_tags::REQMAP, std::mem::take(&mut self.reqmap));
        arena.put(arena_tags::CQE_SCRATCH, std::mem::take(&mut self.cqe_scratch));
        arena.put(0, SqBufs(std::mem::take(&mut self.sq_bufs)));
    }

    fn adopt_buffers(&mut self, arena: &mut simkit::RunArena) {
        use blkstack::stack::arena_tags;
        self.reqmap = arena.take(arena_tags::REQMAP);
        self.cqe_scratch = arena.take(arena_tags::CQE_SCRATCH);
        let SqBufs(mut bufs) = arena.take::<SqBufs>(0);
        // The constructor sized `sq_bufs` to this device's NSQ count; a
        // recycled set from a different geometry is resized to match.
        let want = self.sq_bufs.len();
        bufs.resize_with(want, Vec::new);
        self.sq_bufs = bufs;
    }

    fn submit(&mut self, bios: &[Bio], env: &mut StackEnv<'_>) -> SimDuration {
        debug_assert!(!bios.is_empty());
        let core = bios[0].core;
        // Route every bio, then group its commands by target NSQ so each
        // NSQ's lock is taken once per batch. Grouping goes through the
        // recycled per-SQ staging buffers: `active_sqs` records first-touch
        // order (the dispatch order the old per-call Vec produced) and each
        // buffer is drained back to empty below — zero steady-state heap
        // traffic.
        debug_assert!(self.active_sqs.is_empty());
        let mut total_rqs = 0u32;
        for bio in bios {
            // Tenant base priority doubles as the trace SLA class (High
            // base priority == latency-sensitive ionice == L-tenant).
            let base = self
                .troute
                .route_of(bio.tenant)
                .map(|r| r.base_prio)
                .unwrap_or(Priority::Low);
            let sla = if base == Priority::High {
                simkit::Sla::L
            } else {
                simkit::Sla::T
            };
            let sq = if self.cfg.variant == Variant::Base {
                // dare-base: the decoupled layer only — requests round-robin
                // across the NQs of their SLA group per request, with no
                // tenant defaults and no merit scheduling (§7.3).
                let prio = if base == Priority::Low && bio.flags.is_outlier() {
                    Priority::High
                } else {
                    base
                };
                self.nqreg.schedule(
                    &mut self.policy,
                    prio,
                    1,
                    env.device,
                    &self.locks,
                    &self.proxies,
                )
            } else {
                self.troute.route(
                    bio,
                    env.now,
                    &mut self.policy,
                    &mut self.nqreg,
                    env.device,
                    &self.locks,
                    &mut self.proxies,
                )
            };
            let extents = split_extents(&self.split, bio.offset_blocks, bio.bytes);
            let h = self.reqmap.insert_bio(*bio, extents.len() as u32);
            if !self.active_sqs.contains(&sq) {
                self.active_sqs.push(sq);
            }
            let bucket = &mut self.sq_bufs[sq.index()];
            for e in extents {
                let rq_id = self.reqmap.alloc_rq(h, e.nlb);
                total_rqs += 1;
                let host = HostTag {
                    rq_id,
                    submit_core: core,
                    tenant: bio.tenant.0,
                    sla,
                };
                trace_routed(
                    &mut env.dev_out.trace,
                    env.now,
                    host,
                    sq,
                    bio.flags.is_outlier(),
                );
                bucket.push(NvmeCommand {
                    cid: CommandId(rq_id),
                    nsid: bio.nsid,
                    opcode: bio.op,
                    slba: e.slba,
                    nlb: e.nlb,
                    host,
                });
            }
        }

        let mut cost = env.costs.submit_cost(total_rqs);
        let mut active_sqs = std::mem::take(&mut self.active_sqs);
        for &sq in &active_sqs {
            let mut cmds = std::mem::take(&mut self.sq_bufs[sq.index()]);
            let n = cmds.len() as u64;
            let hold = env.costs.nsq_insert * n;
            let acq = self.locks.acquire(sq, env.now, hold);
            cost += acq.wait + hold;
            if !acq.wait.is_zero() {
                // Contended tail: the cache line bounced between cores.
                cost += env.costs.remote_submission * n;
            }
            // Submission half of the I/O service dispatching: the policy
            // picks the doorbell discipline per NSQ batch (the default
            // policy rings per request for high-priority NSQs under the
            // full variant, §5.3).
            let immediate = self.policy.doorbell(&DoorbellCtx {
                prio: self.proxies.get(sq).prio,
                commands: n,
            }) == DoorbellMode::Immediate;
            let mut pushed = 0u64;
            for cmd in cmds.drain(..) {
                if env.device.sq_has_room(sq) {
                    env.device
                        .push_command(sq, cmd)
                        .expect("has_room guaranteed space");
                    trace_enqueued(&mut env.dev_out.trace, env.now, cmd.host, sq);
                    pushed += 1;
                    self.stats.submitted_rqs += 1;
                    if immediate {
                        // Immediate notification per request.
                        env.device.ring_doorbell(sq, env.now, env.dev_out);
                        self.stats.doorbells += 1;
                        cost += env.costs.doorbell;
                    }
                } else {
                    self.parked.park(sq, cmd);
                    self.stats.requeues += 1;
                }
            }
            if pushed > 0 && !immediate {
                // Postponed notification: one doorbell per enqueued batch.
                env.device.ring_doorbell(sq, env.now, env.dev_out);
                self.stats.doorbells += 1;
                cost += env.costs.doorbell;
            }
            self.sq_bufs[sq.index()] = cmds;
        }
        active_sqs.clear();
        self.active_sqs = active_sqs;
        cost
    }

    fn on_irq(&mut self, cq: CqId, core: u16, env: &mut StackEnv<'_>) -> SimDuration {
        let mut entries = std::mem::take(&mut self.cqe_scratch);
        env.device.isr_pop_into(cq, usize::MAX, &mut entries);
        // Completion half of the I/O service dispatching: per-request vs
        // batched reap is the policy's call (default: per-request for
        // high-priority NCQs under the full variant, §5.3).
        let mode = self.policy.reap(&ReapCtx {
            prio: self.nqreg.cq_priority(cq),
            entries: entries.len() as u64,
        });
        let cost = process_cqes(
            &entries,
            mode,
            core,
            env.now,
            env.costs,
            &mut self.reqmap,
            &mut self.stats,
            env.completions,
            &mut env.dev_out.trace,
        );
        env.device.isr_done(cq, env.now, env.dev_out);
        self.cqe_scratch = entries;
        if !self.parked.is_empty() {
            self.parked
                .flush(env.device, env.now, env.dev_out, &mut self.stats);
        }
        cost
    }

    fn on_watchdog(&mut self, env: &mut StackEnv<'_>) {
        // Fault recovery: completion-starved parked commands first, then
        // stalled-NSQ doorbell redrive with bounded retry.
        if !self.parked.is_empty() {
            self.parked
                .flush(env.device, env.now, env.dev_out, &mut self.stats);
        }
        self.redrive
            .redrive(env.device, env.now, env.dev_out, &mut self.stats);
    }

    fn stats(&self) -> StackStats {
        let mut s = self.stats;
        s.lock_wait_total = self.locks.in_lock_grand_total();
        s.lock_contended = self.locks.contended_grand_total();
        s
    }

    fn io_capacity(&self) -> usize {
        self.reqmap.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blkstack::bio::{BioId, ReqFlags};
    use dd_nvme::{DeviceOutput, IoOpcode, NamespaceId, NvmeConfig, NvmeDevice};
    use simkit::{EventQueue, SimRng, SimTime};

    fn device() -> NvmeDevice {
        let mut cfg = NvmeConfig::sv_m();
        cfg.nr_sqs = 8;
        cfg.nr_cqs = 8;
        NvmeDevice::new(cfg, 4)
    }

    fn bio(id: u64, tenant: u64, core: u16, bytes: u64, flags: ReqFlags) -> Bio {
        Bio {
            id: BioId(id),
            tenant: Pid(tenant),
            core,
            nsid: NamespaceId(1),
            op: IoOpcode::Read,
            offset_blocks: id * 64,
            bytes,
            flags,
            issued_at: SimTime::ZERO,
        }
    }

    fn task(pid: u64, core: u16, ionice: IoPriorityClass) -> TaskStruct {
        TaskStruct::new(Pid(pid), core, ionice, NamespaceId(1), "x")
    }

    struct Harness {
        dev: NvmeDevice,
        out: DeviceOutput,
        comps: Vec<blkstack::BioCompletion>,
        migs: Vec<(Pid, u16)>,
        rng: SimRng,
        costs: dd_cpu::HostCosts,
    }

    impl Harness {
        fn new() -> Self {
            Harness {
                dev: device(),
                out: DeviceOutput::new(),
                comps: Vec::new(),
                migs: Vec::new(),
                rng: SimRng::new(1),
                costs: dd_cpu::HostCosts::default(),
            }
        }

        fn env(&mut self, now: SimTime) -> StackEnv<'_> {
            StackEnv {
                now,
                device: &mut self.dev,
                dev_out: &mut self.out,
                completions: &mut self.comps,
                migrations: &mut self.migs,
                rng: &mut self.rng,
                costs: &self.costs,
            }
        }
    }

    fn stack(variant: Variant, dev: &NvmeDevice) -> DaredevilStack {
        let cfg = DaredevilConfig {
            variant,
            mru: 4,
            profile_window: 8,
            ..DaredevilConfig::default()
        };
        DaredevilStack::for_device(cfg, 4, dev)
    }

    #[test]
    fn nq_level_separation_holds() {
        let mut h = Harness::new();
        let mut s = stack(Variant::Full, &h.dev);
        let mut env = h.env(SimTime::ZERO);
        s.register_tenant(&task(1, 0, IoPriorityClass::RealTime), &mut env);
        s.register_tenant(&task(2, 0, IoPriorityClass::BestEffort), &mut env);
        // L and T submit from the SAME core — the vanilla stack would
        // intertwine them in NSQ 0; Daredevil must not.
        s.submit(&[bio(1, 1, 0, 4096, ReqFlags::NONE)], &mut env);
        s.submit(&[bio(2, 2, 0, 131072, ReqFlags::NONE)], &mut env);
        let mut l_sqs = Vec::new();
        let mut t_sqs = Vec::new();
        for i in 0..8u16 {
            let st = env.device.sq_stats(SqId(i));
            if st.submitted_total > 0 {
                if i < 4 {
                    l_sqs.push(i);
                } else {
                    t_sqs.push(i);
                }
            }
        }
        assert_eq!(l_sqs.len(), 1, "one high-group NSQ used for L");
        assert_eq!(t_sqs.len(), 1, "one low-group NSQ used for T");
    }

    #[test]
    fn end_to_end_completion() {
        let mut h = Harness::new();
        let mut s = stack(Variant::Full, &h.dev);
        {
            let mut env = h.env(SimTime::ZERO);
            s.register_tenant(&task(1, 0, IoPriorityClass::RealTime), &mut env);
            s.submit(&[bio(9, 1, 0, 4096, ReqFlags::NONE)], &mut env);
        }
        // Drive device to the interrupt.
        let mut q = EventQueue::new();
        let irq = loop {
            for (at, ev) in h.out.events.drain(..) {
                q.push(at, ev);
            }
            if let Some(r) = h.out.irqs.pop() {
                break r;
            }
            let (at, ev) = q.pop().expect("device stalled");
            h.dev.handle_event(ev, at, &mut h.out);
        };
        let mut env = StackEnv {
            now: irq.at,
            device: &mut h.dev,
            dev_out: &mut h.out,
            completions: &mut h.comps,
            migrations: &mut h.migs,
            rng: &mut h.rng,
            costs: &h.costs,
        };
        s.on_irq(irq.cq, irq.core, &mut env);
        assert_eq!(h.comps.len(), 1);
        assert_eq!(h.comps[0].bio.id, BioId(9));
        assert_eq!(s.stats().completed_rqs, 1);
    }

    #[test]
    fn full_variant_rings_per_l_request() {
        let mut h = Harness::new();
        let mut s = stack(Variant::Full, &h.dev);
        let mut env = h.env(SimTime::ZERO);
        s.register_tenant(&task(1, 0, IoPriorityClass::RealTime), &mut env);
        let bios: Vec<Bio> = (0..4).map(|i| bio(i, 1, 0, 4096, ReqFlags::NONE)).collect();
        s.submit(&bios, &mut env);
        assert_eq!(s.stats().doorbells, 4, "immediate per-request doorbells");
        // T batch gets one doorbell.
        s.register_tenant(&task(2, 1, IoPriorityClass::BestEffort), &mut env);
        let bios: Vec<Bio> = (10..14)
            .map(|i| bio(i, 2, 1, 131072, ReqFlags::NONE))
            .collect();
        s.submit(&bios, &mut env);
        assert_eq!(s.stats().doorbells, 5, "batched T doorbell");
    }

    #[test]
    fn base_variant_round_robins_and_batches() {
        let mut h = Harness::new();
        let mut s = stack(Variant::Base, &h.dev);
        let mut env = h.env(SimTime::ZERO);
        s.register_tenant(&task(1, 0, IoPriorityClass::RealTime), &mut env);
        // 8 L bios round-robin across the 4 high-group NSQs: two commands
        // per NSQ, one batched doorbell per NSQ (not per request).
        let bios: Vec<Bio> = (0..8).map(|i| bio(i, 1, 0, 4096, ReqFlags::NONE)).collect();
        s.submit(&bios, &mut env);
        for q in 0..4u16 {
            assert_eq!(
                env.device.sq_stats(SqId(q)).submitted_total,
                2,
                "per-request round-robin must spread evenly"
            );
        }
        assert_eq!(s.stats().doorbells, 4, "one batched doorbell per NSQ");
        assert_eq!(s.name(), "dare-base");
    }

    #[test]
    fn base_variant_still_separates_priorities() {
        // dare-base routes by SLA group (round-robin inside): L and T must
        // still never share an NSQ.
        let mut h = Harness::new();
        let mut s = stack(Variant::Base, &h.dev);
        let mut env = h.env(SimTime::ZERO);
        for p in 0..4u64 {
            let ionice = if p % 2 == 0 {
                IoPriorityClass::RealTime
            } else {
                IoPriorityClass::BestEffort
            };
            s.register_tenant(&task(p, p as u16 % 4, ionice), &mut env);
        }
        for p in 0..4u64 {
            s.submit(&[bio(p, p, p as u16 % 4, 4096, ReqFlags::NONE)], &mut env);
        }
        // Tenants 0,2 are L (high group: SQs 0-3); 1,3 are T (SQs 4-7).
        let high_used: u64 = (0..4u16)
            .map(|i| env.device.sq_stats(SqId(i)).submitted_total)
            .sum();
        let low_used: u64 = (4..8u16)
            .map(|i| env.device.sq_stats(SqId(i)).submitted_total)
            .sum();
        assert_eq!(high_used, 2, "two L bios in high group");
        assert_eq!(low_used, 2, "two T bios in low group");
    }

    #[test]
    fn outlier_sync_requests_escape_low_group() {
        let mut h = Harness::new();
        let mut s = stack(Variant::Full, &h.dev);
        let mut env = h.env(SimTime::ZERO);
        s.register_tenant(&task(2, 0, IoPriorityClass::BestEffort), &mut env);
        // A T-tenant's fsync-like request must land in the high group.
        s.submit(&[bio(1, 2, 0, 4096, ReqFlags::SYNC)], &mut env);
        let high_used: u64 = (0..4u16)
            .map(|i| env.device.sq_stats(SqId(i)).submitted_total)
            .sum();
        assert_eq!(high_used, 1);
    }

    #[test]
    fn multi_namespace_routing_is_uniform() {
        // Two tenants with identical SLAs on different namespaces must be
        // treated identically: same priority group, device-level proxies.
        let mut cfg = NvmeConfig::sv_m().with_namespaces(4);
        cfg.nr_sqs = 8;
        cfg.nr_cqs = 8;
        let dev = NvmeDevice::new(cfg, 4);
        let mut h = Harness::new();
        h.dev = dev;
        let mut s = stack(Variant::Full, &h.dev);
        let mut env = h.env(SimTime::ZERO);
        let mut t1 = task(1, 0, IoPriorityClass::RealTime);
        t1.nsid = NamespaceId(1);
        let mut t2 = task(2, 1, IoPriorityClass::RealTime);
        t2.nsid = NamespaceId(3);
        s.register_tenant(&t1, &mut env);
        s.register_tenant(&t2, &mut env);
        let mut b1 = bio(1, 1, 0, 4096, ReqFlags::NONE);
        b1.nsid = NamespaceId(1);
        let mut b2 = bio(2, 2, 1, 4096, ReqFlags::NONE);
        b2.nsid = NamespaceId(3);
        s.submit(&[b1], &mut env);
        s.submit(&[b2], &mut env);
        let high_used: u64 = (0..4u16)
            .map(|i| env.device.sq_stats(SqId(i)).submitted_total)
            .sum();
        assert_eq!(high_used, 2, "both L tenants in the high group");
    }

    #[test]
    fn capabilities_are_all_four() {
        let h = Harness::new();
        let s = stack(Variant::Full, &h.dev);
        let c = s.capabilities();
        assert!(c.hardware_independent && c.nq_exploitation);
        assert!(c.cross_core_autonomy && c.multi_namespace);
    }
}
