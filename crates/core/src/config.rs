//! Daredevil configuration and ablation variants.

use crate::policy::PolicySpec;

/// Which subset of Daredevil's techniques is active (the §7.3 ablation).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Variant {
    /// `dare-base`: the decoupled block layer only; requests route to the
    /// SLA-matching NQGroup but NQs inside the group are picked round-robin,
    /// and the I/O service routines stay kernel-default (batched).
    Base,
    /// `dare-sched`: `dare-base` plus merit-based NQ scheduling.
    Sched,
    /// `dare-full`: `dare-sched` plus SLA-aware I/O service dispatching
    /// (immediate doorbells and per-request completion for high priority).
    Full,
}

/// Tunables of the Daredevil stack.
#[derive(Clone, Copy, Debug)]
pub struct DaredevilConfig {
    /// Exponential smoothing weight α of the merit calculation. The paper
    /// uses 0.8 (best balance between history and recency, §7).
    pub alpha: f64,
    /// Initial MRU budget of every merit heap. The paper sets it to the NQ
    /// depth (1024 on the tested SSDs).
    pub mru: u32,
    /// Active technique subset.
    pub variant: Variant,
    /// Profiling window: outlier-tendency tags are re-evaluated every this
    /// many requests of a T-tenant.
    pub profile_window: u64,
    /// Which built-in scheduling policy drives routing, merit, and batching
    /// decisions (`--policy NAME` on the figure binaries; see
    /// [`crate::policy`]). The default is the paper's Algorithm 1/2 +
    /// SLA-aware dispatching.
    pub policy: PolicySpec,
}

impl Default for DaredevilConfig {
    fn default() -> Self {
        DaredevilConfig {
            alpha: 0.8,
            mru: 1024,
            variant: Variant::Full,
            profile_window: 64,
            policy: PolicySpec::Default,
        }
    }
}

impl DaredevilConfig {
    /// The `dare-base` ablation.
    pub fn base() -> Self {
        DaredevilConfig {
            variant: Variant::Base,
            ..Default::default()
        }
    }

    /// The `dare-sched` ablation.
    pub fn sched() -> Self {
        DaredevilConfig {
            variant: Variant::Sched,
            ..Default::default()
        }
    }

    /// Validates the tunables.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.alpha > 0.5 && self.alpha < 1.0) {
            return Err(format!("alpha must be in (0.5, 1), got {}", self.alpha));
        }
        if self.mru == 0 {
            return Err("mru must be >= 1".into());
        }
        if self.profile_window == 0 {
            return Err("profile window must be >= 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = DaredevilConfig::default();
        assert_eq!(c.alpha, 0.8);
        assert_eq!(c.mru, 1024);
        assert_eq!(c.variant, Variant::Full);
        assert_eq!(c.policy, PolicySpec::Default);
        c.validate().unwrap();
    }

    #[test]
    fn ablation_constructors() {
        assert_eq!(DaredevilConfig::base().variant, Variant::Base);
        assert_eq!(DaredevilConfig::sched().variant, Variant::Sched);
    }

    #[test]
    fn alpha_range_enforced() {
        let at = |alpha| DaredevilConfig {
            alpha,
            ..DaredevilConfig::default()
        };
        assert!(at(0.5).validate().is_err());
        assert!(at(1.0).validate().is_err());
        assert!(at(0.9).validate().is_ok());
    }

    #[test]
    fn zero_mru_rejected() {
        let c = DaredevilConfig {
            mru: 0,
            ..DaredevilConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
