//! Integration tests asserting the paper's *qualitative* claims end to end.
//!
//! These run reduced-scale versions of the evaluation scenarios and check
//! the direction and rough magnitude of every headline result — who wins,
//! where the crossovers are — not absolute numbers.

use daredevil_repro::prelude::*;

fn quick(stack: StackSpec, nr_l: u16, nr_t: u16, cores: u16) -> RunOutput {
    let mut s = Scenario::multi_tenant_fio(stack, nr_l, nr_t, cores, MachinePreset::SvM);
    s.knobs.warmup = SimDuration::from_millis(10);
    s.knobs.measure = SimDuration::from_millis(120);
    daredevil_repro::testbed::run(s)
}

/// §3.1 / Fig. 2: co-locating L and T in the same NQs inflates L latency;
/// partitioning the same NQ budget removes most of it.
#[test]
fn fig2_interference_is_real_and_separable() {
    let interfered = quick(StackSpec::vanilla_queues(4), 4, 16, 4);
    let separated = quick(StackSpec::vanilla_partitioned(4), 4, 16, 4);
    let ratio = interfered.l_avg_ms() / separated.l_avg_ms().max(1e-9);
    assert!(
        ratio > 2.0,
        "NQ partitioning must cut L latency by >2x, got {ratio:.2}x \
         ({} vs {})",
        interfered.l_avg_ms(),
        separated.l_avg_ms()
    );
}

/// §7.1 / Fig. 6: under high T-pressure Daredevil cuts the L-tenant tail
/// and average latency by a large factor versus vanilla, at comparable
/// T-throughput.
#[test]
fn fig6_daredevil_beats_vanilla_under_pressure() {
    let vanilla = quick(StackSpec::vanilla(), 4, 16, 4);
    let dare = quick(StackSpec::daredevil(), 4, 16, 4);
    let tail_gain = vanilla.l_p999_ms() / dare.l_p999_ms().max(1e-9);
    let avg_gain = vanilla.l_avg_ms() / dare.l_avg_ms().max(1e-9);
    assert!(tail_gain > 3.0, "tail gain {tail_gain:.1}x too small");
    assert!(avg_gain > 3.0, "avg gain {avg_gain:.1}x too small");
    // Throughput within 30% of vanilla ("comparable and stable").
    let tput_ratio = dare.t_mbps() / vanilla.t_mbps().max(1e-9);
    assert!(
        tput_ratio > 0.7 && tput_ratio < 1.3,
        "T throughput not comparable: {tput_ratio:.2}"
    );
}

/// §7.1: vanilla's L latency grows with T-pressure; Daredevil's stays
/// nearly flat.
#[test]
fn fig6_scaling_with_pressure() {
    let v_low = quick(StackSpec::vanilla(), 4, 2, 4);
    let v_high = quick(StackSpec::vanilla(), 4, 32, 4);
    assert!(
        v_high.l_avg_ms() > v_low.l_avg_ms() * 4.0,
        "vanilla must degrade with pressure: {} -> {}",
        v_low.l_avg_ms(),
        v_high.l_avg_ms()
    );
    let d_low = quick(StackSpec::daredevil(), 4, 2, 4);
    let d_high = quick(StackSpec::daredevil(), 4, 32, 4);
    assert!(
        d_high.l_avg_ms() < d_low.l_avg_ms() * 4.0,
        "daredevil must stay nearly flat: {} -> {}",
        d_low.l_avg_ms(),
        d_high.l_avg_ms()
    );
}

/// §7.1: blk-switch helps at low T-pressure (cross-core scheduling space
/// suffices) but collapses once the tenant count overwhelms it.
#[test]
fn blk_switch_fails_under_overload() {
    let low = quick(StackSpec::blk_switch(), 4, 4, 4);
    let vanilla_low = quick(StackSpec::vanilla(), 4, 4, 4);
    assert!(
        low.l_avg_ms() < vanilla_low.l_avg_ms(),
        "blk-switch must beat vanilla at low pressure: {} vs {}",
        low.l_avg_ms(),
        vanilla_low.l_avg_ms()
    );
    let high = quick(StackSpec::blk_switch(), 4, 32, 4);
    let dare_high = quick(StackSpec::daredevil(), 4, 32, 4);
    assert!(
        high.l_p999_ms() > dare_high.l_p999_ms() * 3.0,
        "blk-switch must collapse under overload: {} vs daredevil {}",
        high.l_p999_ms(),
        dare_high.l_p999_ms()
    );
}

/// §7.2 / Fig. 10: per-class namespaces do not isolate under vanilla, but
/// Daredevil's device-level view does.
#[test]
fn fig10_multi_namespace() {
    let mk = |stack| {
        let mut s = Scenario::multi_namespace(stack, 4, 4, MachinePreset::SvM);
        s.knobs.warmup = SimDuration::from_millis(10);
        s.knobs.measure = SimDuration::from_millis(120);
        daredevil_repro::testbed::run(s)
    };
    let vanilla = mk(StackSpec::vanilla());
    let dare = mk(StackSpec::daredevil());
    let gain = vanilla.l_avg_ms() / dare.l_avg_ms().max(1e-9);
    assert!(
        gain > 3.0,
        "daredevil must win in multi-namespace: {gain:.1}x ({} vs {})",
        vanilla.l_avg_ms(),
        dare.l_avg_ms()
    );
}

/// §7.3 / Fig. 11: dare-base already resists HOL blocking; scheduling and
/// dispatching refine it. All variants stay within a small factor of full.
#[test]
fn fig11_ablation_ordering() {
    let base = quick(StackSpec::dare_base(), 4, 16, 4);
    let sched = quick(StackSpec::dare_sched(), 4, 16, 4);
    let full = quick(StackSpec::daredevil(), 4, 16, 4);
    let vanilla = quick(StackSpec::vanilla(), 4, 16, 4);
    // Even dare-base must beat vanilla by a wide margin.
    assert!(
        base.l_avg_ms() * 2.0 < vanilla.l_avg_ms(),
        "dare-base {} vs vanilla {}",
        base.l_avg_ms(),
        vanilla.l_avg_ms()
    );
    // The full stack must be in the same league as its ablations (the
    // paper's decomposition shows modest deltas between variants).
    assert!(full.l_avg_ms() < base.l_avg_ms() * 3.0);
    assert!(full.l_avg_ms() < sched.l_avg_ms() * 3.0);
}

/// §7.5 / Fig. 14: ionice update storms degrade L-tenant IOPS
/// monotonically as the interval shrinks, and trigger re-scheduling.
#[test]
fn fig14_storm_degrades_gracefully() {
    let mk = |interval: Option<SimDuration>| {
        let mut s =
            Scenario::multi_tenant_fio(StackSpec::daredevil(), 4, 4, 4, MachinePreset::SvM);
        s.knobs.warmup = SimDuration::from_millis(10);
        s.knobs.measure = SimDuration::from_millis(120);
        s.ionice_storm = interval;
        daredevil_repro::testbed::run(s)
    };
    let baseline = mk(None);
    let slow = mk(Some(SimDuration::from_millis(10)));
    let fast = mk(Some(SimDuration::from_micros(50)));
    assert_eq!(baseline.troute_reassignments, 0);
    assert!(slow.troute_reassignments > 0);
    let slow_iops = slow.l_kiops();
    let fast_iops = fast.l_kiops();
    let base_iops = baseline.l_kiops();
    assert!(
        fast_iops < slow_iops && slow_iops <= base_iops * 1.1,
        "storm degradation must be monotone: base={base_iops:.1} slow={slow_iops:.1} fast={fast_iops:.1}"
    );
    assert!(
        fast_iops < base_iops * 0.5,
        "a 50us storm must cost most of the IOPS: {fast_iops:.1} vs {base_iops:.1}"
    );
}

/// §7.5 / Fig. 13: Daredevil's cross-core accesses show up as remote
/// completions, but it still matches or beats vanilla's L latency.
#[test]
fn fig13_cross_core_overheads_bounded() {
    let mk = |stack: StackSpec, storm: bool| {
        let mut s = Scenario::new("fig13", MachinePreset::SvM, stack);
        s.core_pool = 4;
        for i in 0..8u16 {
            s.tenants.push(TenantSpec {
                class_label: if i < 4 { "L" } else { "TL" },
                ionice: IoPriorityClass::RealTime,
                core: i % 4,
                nsid: NamespaceId(1),
                slo: None,
                kind: TenantKind::Fio(if i < 4 {
                    daredevil_repro::workload::tenants::l_tenant_job()
                } else {
                    daredevil_repro::workload::tenants::t_tenant_job()
                }),
            });
        }
        if storm {
            s.migrate_storm = Some(SimDuration::from_millis(2));
        }
        s.knobs.warmup = SimDuration::from_millis(10);
        s.knobs.measure = SimDuration::from_millis(120);
        daredevil_repro::testbed::run(s)
    };
    let vanilla = mk(StackSpec::vanilla(), false);
    let dare = mk(StackSpec::daredevil(), true);
    // The cross-core channel exists...
    assert!(dare.stack_stats.remote_completions > vanilla.stack_stats.remote_completions);
    // ...but does not cost Daredevil its advantage.
    assert!(
        dare.l_avg_ms() < vanilla.l_avg_ms() * 1.5,
        "daredevil {} vs vanilla {}",
        dare.l_avg_ms(),
        vanilla.l_avg_ms()
    );
}

/// Root cause, decomposed: vanilla's latency inflation under T-pressure
/// lives in the in-NSQ wait (the head-of-line blocking of §2.3), while the
/// device-service phase — the in-SSD interference of §8.1 — is comparable
/// across stacks. Daredevil removes the queue wait, not the flash physics.
#[test]
fn latency_inflation_is_in_queue_wait() {
    use daredevil_repro::metrics::span::Span;
    use daredevil_repro::metrics::SpanTable;
    use daredevil_repro::simkit::{Phase, SimTime, Sla, TraceSpec};

    // Trace the four breakdown anchors and stitch spans (the structured
    // replacement for the old bespoke per-completion phase plumbing).
    let traced = |stack: StackSpec| {
        let mask = Phase::Submit.bit()
            | Phase::DeviceFetch.bit()
            | Phase::FlashDone.bit()
            | Phase::Complete.bit();
        let mut s = Scenario::multi_tenant_fio(stack, 4, 16, 4, MachinePreset::SvM);
        s.knobs.warmup = SimDuration::from_millis(10);
        s.knobs.measure = SimDuration::from_millis(120);
        s.knobs.trace = Some(TraceSpec { cap: 1 << 20, mask });
        daredevil_repro::testbed::run(s)
    };
    let window_start = SimTime::from_millis(10);
    let l_in_window =
        |s: &Span| s.sla == Sla::L && s.completed_at().is_some_and(|t| t >= window_start);
    // (queue wait, device service, delivery) averages in ms for L spans.
    let breakdown = |out: &RunOutput| {
        let spans = SpanTable::build(&out.trace);
        assert_eq!(out.trace_dropped, 0, "trace ring must not wrap");
        (
            spans
                .segment_stats(Phase::Submit, Phase::DeviceFetch, l_in_window)
                .avg_ms(),
            spans
                .segment_stats(Phase::DeviceFetch, Phase::FlashDone, l_in_window)
                .avg_ms(),
            spans
                .segment_stats(Phase::FlashDone, Phase::Complete, l_in_window)
                .avg_ms(),
        )
    };
    let vanilla = traced(StackSpec::vanilla());
    let dare = traced(StackSpec::daredevil());
    let (v_wait, v_service, v_delivery) = breakdown(&vanilla);
    let (d_wait, d_service, _) = breakdown(&dare);
    // Vanilla: queue wait dominates end-to-end latency.
    assert!(
        v_wait > vanilla.l_avg_ms() * 0.8,
        "vanilla's inflation must be in-queue: wait={} total={}",
        v_wait,
        vanilla.l_avg_ms()
    );
    // Daredevil: queue wait collapses by >10x.
    assert!(
        d_wait * 10.0 < v_wait,
        "daredevil must remove the queue wait: {d_wait} vs {v_wait}"
    );
    // Device service is a property of the flash, not the stack: within 30%.
    let ratio = d_service / v_service.max(1e-9);
    assert!(
        (0.7..1.3).contains(&ratio),
        "device service must be stack-independent: ratio {ratio:.2}"
    );
    // Phases partition the total (within the batching-delivery slack).
    let sum = v_wait + v_service + v_delivery;
    assert!(
        (sum - vanilla.l_avg_ms()).abs() / vanilla.l_avg_ms() < 0.05,
        "phases must partition the total: {sum} vs {}",
        vanilla.l_avg_ms()
    );
}
