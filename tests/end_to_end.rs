//! Cross-crate sanity: conservation laws and liveness for every stack on
//! every scenario family.

use daredevil_repro::prelude::*;

fn all_stacks() -> Vec<StackSpec> {
    vec![
        StackSpec::vanilla(),
        StackSpec::vanilla_partitioned(4),
        StackSpec::vanilla_sched(daredevil_repro::blkstack::iosched::SchedKind::MqDeadline),
        StackSpec::vanilla_sched(daredevil_repro::blkstack::iosched::SchedKind::Kyber),
        StackSpec::blk_switch(),
        StackSpec::overprov(),
        StackSpec::dare_base(),
        StackSpec::dare_sched(),
        StackSpec::daredevil(),
        StackSpec::virtio(StackSpec::daredevil(), true),
        StackSpec::virtio(StackSpec::vanilla(), false),
    ]
}

/// Every stack completes I/O for every tenant class and never loses or
/// double-counts requests.
#[test]
fn conservation_and_liveness() {
    for stack in all_stacks() {
        let mut s = Scenario::multi_tenant_fio(stack, 2, 4, 2, MachinePreset::Small);
        s.knobs.warmup = SimDuration::from_millis(5);
        s.knobs.measure = SimDuration::from_millis(60);
        let out = daredevil_repro::testbed::run(s);
        let name = out.summary.stack.clone();
        for t in &out.summary.tenants {
            assert!(
                t.ios_completed > 0,
                "{name}: tenant {} starved",
                t.tenant_id
            );
            assert!(
                t.ios_issued >= t.ios_completed,
                "{name}: completed more than issued"
            );
            assert_eq!(
                t.latency.count(),
                t.ios_completed,
                "{name}: histogram count mismatch"
            );
        }
        let st = &out.stack_stats;
        assert!(
            st.submitted_rqs >= st.completed_rqs,
            "{name}: completed more requests than submitted"
        );
        assert_eq!(
            st.completed_rqs,
            st.local_completions + st.remote_completions,
            "{name}: completion locality accounting broken"
        );
    }
}

/// Latency invariants: mean ≤ p99 ≤ p99.9 ≤ max, all positive.
#[test]
fn latency_ordering() {
    for stack in all_stacks() {
        let mut s = Scenario::multi_tenant_fio(stack, 2, 8, 2, MachinePreset::Small);
        s.knobs.warmup = SimDuration::from_millis(5);
        s.knobs.measure = SimDuration::from_millis(60);
        let out = daredevil_repro::testbed::run(s);
        let l = out.summary.class("L").latency;
        assert!(l.min() > SimDuration::ZERO);
        assert!(l.p50() <= l.p99());
        assert!(l.p99() <= l.p999());
        assert!(l.p999() <= l.max());
    }
}

/// Multi-namespace scenarios work on every stack and keep namespaces
/// functional (all tenants make progress on their own namespace).
#[test]
fn multi_namespace_liveness() {
    for stack in all_stacks() {
        let mut s = Scenario::multi_namespace(stack, 4, 4, MachinePreset::SvM);
        s.knobs.warmup = SimDuration::from_millis(5);
        s.knobs.measure = SimDuration::from_millis(60);
        let out = daredevil_repro::testbed::run(s);
        for t in &out.summary.tenants {
            assert!(t.ios_completed > 0, "tenant {} starved", t.tenant_id);
        }
    }
}

/// The WS-M preset (NSQ ≫ NCQ fan-out) works on every stack — this is the
/// configuration where nqreg's two-step scheduling is non-degenerate.
#[test]
fn ws_m_fanout_runs() {
    for stack in all_stacks() {
        let mut s = Scenario::multi_tenant_fio(stack, 2, 4, 4, MachinePreset::WsM);
        s.knobs.warmup = SimDuration::from_millis(5);
        s.knobs.measure = SimDuration::from_millis(60);
        let out = daredevil_repro::testbed::run(s);
        assert!(out.summary.class("L").ios_completed > 0);
        assert!(out.summary.class("T").bytes_completed > 0);
    }
}

/// Mailserver app completes its ops, produces fsync/delete latencies, and
/// its cache keeps most reads off the device.
#[test]
fn mailserver_end_to_end() {
    use daredevil_repro::workload::mailserver::MailConfig;
    use daredevil_repro::workload::OpKind;
    let mut s = Scenario::new("mail", MachinePreset::Small, StackSpec::daredevil());
    s.tenants.push(TenantSpec {
        class_label: "app",
        ionice: IoPriorityClass::RealTime,
        core: 0,
        nsid: NamespaceId(1),
        slo: None,
        kind: TenantKind::App(AppKind::Mailserver {
            config: MailConfig {
                files: 2_000,
                ..MailConfig::default()
            },
            ops: 1_500,
        }),
    });
    s.stop_when_apps_done = true;
    s.knobs.measure = SimDuration::from_secs(30);
    let out = daredevil_repro::testbed::run(s);
    let fsync = out.op_latencies.get(&OpKind::Fsync).expect("fsyncs ran");
    let delete = out.op_latencies.get(&OpKind::Delete).expect("deletes ran");
    assert!(fsync.count() > 50);
    assert!(delete.count() > 20);
    assert!(
        fsync.mean() > SimDuration::from_micros(50),
        "fsync hits the device"
    );
    let reads = out.op_latencies.get(&OpKind::FileRead).expect("reads ran");
    // Cached reads are much faster than fsyncs on average.
    assert!(reads.mean() < fsync.mean());
}

/// An idle-ish scenario (single L-tenant, no interference) delivers
/// microsecond-class latency — the device's native speed shows through the
/// whole stack.
#[test]
fn uncontended_latency_is_microseconds() {
    let mut s = Scenario::multi_tenant_fio(StackSpec::vanilla(), 1, 0, 1, MachinePreset::SvM);
    s.knobs.warmup = SimDuration::from_millis(5);
    s.knobs.measure = SimDuration::from_millis(50);
    let out = daredevil_repro::testbed::run(s);
    let l = out.summary.class("L").latency;
    assert!(
        l.mean() < SimDuration::from_micros(200),
        "uncontended read should be ~100us-class, got {}",
        l.mean()
    );
}
