//! Integration tests for the extension tier: I/O schedulers, the
//! static-overprovision baseline, virtio guests, interrupt coalescing, and
//! rate-limited workloads.

use daredevil_repro::blkstack::iosched::SchedKind;
use daredevil_repro::prelude::*;

fn durations(mut s: Scenario) -> Scenario {
    s.knobs.warmup = SimDuration::from_millis(10);
    s.knobs.measure = SimDuration::from_millis(120);
    s
}

/// Write-pressure scenario for the elevator comparisons.
fn write_pressure(stack: StackSpec, nr_t: u16) -> Scenario {
    let mut s = Scenario::multi_tenant_fio(stack, 4, 0, 4, MachinePreset::SvM);
    for i in 0..nr_t {
        s.tenants.push(TenantSpec {
            class_label: "T",
            ionice: IoPriorityClass::BestEffort,
            core: i % 4,
            nsid: NamespaceId(1),
            kind: TenantKind::Fio(daredevil_repro::workload::tenants::t_tenant_write_job()),
            slo: None,
        });
    }
    durations(s)
}

/// SLA-blind elevators help reads against write floods, but NQ-level
/// separation beats the best of them.
#[test]
fn io_schedulers_help_but_do_not_solve_multi_tenancy() {
    let vanilla = daredevil_repro::testbed::run(write_pressure(StackSpec::vanilla(), 16));
    let kyber = daredevil_repro::testbed::run(write_pressure(
        StackSpec::vanilla_sched(SchedKind::Kyber),
        16,
    ));
    let dare = daredevil_repro::testbed::run(write_pressure(StackSpec::daredevil(), 16));
    assert!(
        kyber.l_avg_ms() < vanilla.l_avg_ms(),
        "kyber must improve on noop: {} vs {}",
        kyber.l_avg_ms(),
        vanilla.l_avg_ms()
    );
    assert!(
        dare.l_avg_ms() < kyber.l_avg_ms(),
        "NQ-level separation must beat the elevator: {} vs {}",
        dare.l_avg_ms(),
        kyber.l_avg_ms()
    );
}

/// mq-deadline bounds the read backlog instead of letting it grow with the
/// write flood: under a flood that starves noop's readers entirely within
/// the window, deadline keeps them flowing.
#[test]
fn mq_deadline_bounds_read_latency() {
    let noop_hi = daredevil_repro::testbed::run(write_pressure(StackSpec::vanilla(), 32));
    let dl_hi = daredevil_repro::testbed::run(write_pressure(
        StackSpec::vanilla_sched(SchedKind::MqDeadline),
        32,
    ));
    let noop_ios = noop_hi.summary.class("L").ios_completed;
    let dl_ios = dl_hi.summary.class("L").ios_completed;
    assert!(
        dl_ios > 5 * noop_ios.max(1),
        "deadline must keep reads flowing: {dl_ios} vs {noop_ios} completions"
    );
    assert!(
        dl_hi.l_avg_ms() > 0.0 && dl_hi.l_avg_ms() < 60.0,
        "deadline read latency must be bounded: {}",
        dl_hi.l_avg_ms()
    );
}

/// The overprovision baseline separates as well as Daredevil with even
/// placement, but a skewed placement overflows its static pair while
/// Daredevil's decoupled routing never parks a request.
#[test]
fn overprov_static_pairs_overflow_under_skew() {
    let mk = |stack: StackSpec, skewed: bool| {
        let mut s = Scenario::multi_tenant_fio(stack, 4, 0, 4, MachinePreset::SvM);
        for i in 0..40u16 {
            s.tenants.push(TenantSpec {
                class_label: "T",
                ionice: IoPriorityClass::BestEffort,
                core: if skewed { 0 } else { i % 4 },
                nsid: NamespaceId(1),
                slo: None,
                kind: TenantKind::Fio(daredevil_repro::workload::tenants::t_tenant_job()),
            });
        }
        daredevil_repro::testbed::run(durations(s))
    };
    let over_even = mk(StackSpec::overprov(), false);
    let over_skew = mk(StackSpec::overprov(), true);
    let dare_skew = mk(StackSpec::daredevil(), true);
    assert_eq!(over_even.stack_stats.requeues, 0);
    assert!(
        over_skew.stack_stats.requeues > 1000,
        "skewed overprov must overflow its pair, got {}",
        over_skew.stack_stats.requeues
    );
    assert_eq!(
        dare_skew.stack_stats.requeues, 0,
        "daredevil spreads the skew"
    );
    // L-separation itself still works for overprov (it has WRR hardware).
    assert!(over_even.l_avg_ms() < 1.0);
}

/// Guest SLAs only reach the host through SLA-aware virtqueues.
#[test]
fn virtio_sla_awareness_end_to_end() {
    let mk = |stack: StackSpec| {
        let mut s = Scenario::new("vm", MachinePreset::SvM, stack);
        s.core_pool = 4;
        s.nvme = s.nvme.with_namespaces(2);
        for vm in 1..=2u32 {
            for i in 0..2u16 {
                s.tenants.push(TenantSpec {
                    class_label: "L",
                    ionice: IoPriorityClass::RealTime,
                    core: i % 4,
                    nsid: NamespaceId(vm),
                    kind: TenantKind::Fio(daredevil_repro::workload::tenants::l_tenant_job()),
                    slo: None,
                });
            }
            for i in 0..6u16 {
                s.tenants.push(TenantSpec {
                    class_label: "T",
                    ionice: IoPriorityClass::BestEffort,
                    core: (2 + i) % 4,
                    nsid: NamespaceId(vm),
                    kind: TenantKind::Fio(daredevil_repro::workload::tenants::t_tenant_job()),
                    slo: None,
                });
            }
        }
        daredevil_repro::testbed::run(durations(s))
    };
    let naive = mk(StackSpec::virtio(StackSpec::daredevil(), false));
    let sla = mk(StackSpec::virtio(StackSpec::daredevil(), true));
    assert!(
        sla.l_avg_ms() * 5.0 < naive.l_avg_ms(),
        "per-SLA VQs must restore separation: {} vs {}",
        sla.l_avg_ms(),
        naive.l_avg_ms()
    );
    // Guest identity must survive the layer: every guest tenant completes.
    for t in &sla.summary.tenants {
        assert!(t.ios_completed > 0, "guest tenant {} starved", t.tenant_id);
    }
}

/// Interrupt coalescing hurts L latency where it is visible — at low
/// pressure, where a QD-1 L-tenant never reaches the aggregation threshold
/// and eats the full aggregation window on every I/O. Daredevil's full
/// variant opts its high-priority vectors out and keeps native latency.
#[test]
fn daredevil_opts_high_priority_vectors_out_of_coalescing() {
    let mk = |stack: StackSpec, coalesce: bool| {
        let mut s = Scenario::multi_tenant_fio(stack, 4, 0, 4, MachinePreset::SvM);
        if coalesce {
            s.nvme = s
                .nvme
                .with_irq_coalescing(16, SimDuration::from_micros(250));
        }
        daredevil_repro::testbed::run(durations(s))
    };
    let base = mk(StackSpec::vanilla(), false);
    let vanilla_coal = mk(StackSpec::vanilla(), true);
    let dare_coal = mk(StackSpec::daredevil(), true);
    assert!(
        vanilla_coal.l_avg_ms() > base.l_avg_ms() + 0.2,
        "coalescing must add ~the aggregation window on vanilla: {} vs {}",
        vanilla_coal.l_avg_ms(),
        base.l_avg_ms()
    );
    assert!(
        dare_coal.l_avg_ms() < base.l_avg_ms() + 0.05,
        "daredevil's opt-out must keep native latency: {} vs base {}",
        dare_coal.l_avg_ms(),
        base.l_avg_ms()
    );
}

/// Rate-limited FIO jobs respect their cap and stay deterministic.
#[test]
fn rate_limited_jobs_pace_themselves() {
    let mk = || {
        let mut s = Scenario::new("rate", MachinePreset::Small, StackSpec::vanilla());
        s.tenants.push(TenantSpec {
            class_label: "L",
            ionice: IoPriorityClass::RealTime,
            core: 0,
            nsid: NamespaceId(1),
            slo: None,
            kind: TenantKind::Fio(
                daredevil_repro::workload::FioJob::new(
                    daredevil_repro::workload::RwPattern::RandRead,
                    4096,
                    1,
                )
                .with_rate_iops(2000),
            ),
        });
        daredevil_repro::testbed::run(durations(s))
    };
    let out = mk();
    let iops = out.summary.class("L").iops(out.summary.window_secs());
    // Unconstrained this machine does >10k IOPS; the cap must bind (with
    // slack for the exponential pacing).
    assert!(iops < 2600.0, "rate cap must bind: measured {iops:.0} IOPS");
    assert!(iops > 800.0, "pacing must not stall the job: {iops:.0}");
    let again = mk();
    assert_eq!(
        out.summary.class("L").ios_completed,
        again.summary.class("L").ios_completed,
        "rate pacing must be deterministic"
    );
}

/// The intro's motivating co-location: latency-sensitive tenants against a
/// checkpointing trainer. The trainer is throughput-class; its checkpoint
/// flush is a sync outlier that troute routes to the high-priority group,
/// while its bulk writes stay in the low group — L-tenants barely notice
/// the checkpoints under Daredevil.
#[test]
fn checkpoint_trainer_co_location() {
    use daredevil_repro::workload::checkpoint::CheckpointConfig;
    use daredevil_repro::workload::OpKind;
    let mk = |stack: StackSpec| {
        let mut s = Scenario::multi_tenant_fio(stack, 4, 0, 4, MachinePreset::SvM);
        for i in 0..2u16 {
            s.tenants.push(TenantSpec {
                class_label: "T",
                ionice: IoPriorityClass::BestEffort,
                core: i % 4,
                nsid: NamespaceId(1),
                slo: None,
                kind: TenantKind::App(AppKind::Checkpoint {
                    config: CheckpointConfig::default(),
                    checkpoints: 1_000_000, // Runs for the whole window.
                }),
            });
        }
        daredevil_repro::testbed::run(durations(s))
    };
    let vanilla = mk(StackSpec::vanilla());
    let dare = mk(StackSpec::daredevil());
    // Checkpoints actually ran and their latency was measured.
    let ckpt = dare
        .op_latencies
        .get(&OpKind::Checkpoint)
        .expect("checkpoints recorded");
    assert!(ckpt.count() > 5, "checkpoints ran: {}", ckpt.count());
    // The trainer's bulk writes interfere under vanilla, not daredevil.
    assert!(
        dare.l_avg_ms() < vanilla.l_avg_ms(),
        "daredevil must shield L from checkpoints: {} vs {}",
        dare.l_avg_ms(),
        vanilla.l_avg_ms()
    );
    // The trainer still makes progress under daredevil (bandwidth intact).
    let dare_ckpts = dare.op_latencies[&OpKind::Checkpoint].count();
    let vanilla_ckpts = vanilla.op_latencies[&OpKind::Checkpoint].count();
    assert!(
        dare_ckpts as f64 > vanilla_ckpts as f64 * 0.6,
        "checkpoint progress must stay comparable: {dare_ckpts} vs {vanilla_ckpts}"
    );
}

/// §8.1's in-SSD residual, aged-drive edition: with garbage collection
/// enabled (write-triggered erases), even Daredevil's L latency floor
/// rises — NQ-level separation cannot fix flash physics — but it still
/// beats vanilla by the same structural margin.
#[test]
fn gc_raises_the_floor_for_everyone() {
    use daredevil_repro::nvme::flash::GcConfig;
    let mk = |stack: StackSpec, gc: bool| {
        let mut s = Scenario::multi_tenant_fio(stack, 4, 0, 4, MachinePreset::SvM);
        // Write-heavy T-tenants to feed the collector.
        for i in 0..8u16 {
            s.tenants.push(TenantSpec {
                class_label: "T",
                ionice: IoPriorityClass::BestEffort,
                core: i % 4,
                nsid: NamespaceId(1),
                kind: TenantKind::Fio(daredevil_repro::workload::tenants::t_tenant_write_job()),
                slo: None,
            });
        }
        if gc {
            s.nvme.flash = s.nvme.flash.with_gc(GcConfig {
                write_threshold_pages: 64,
                erase_latency: SimDuration::from_millis(3),
            });
        }
        daredevil_repro::testbed::run(durations(s))
    };
    let dare_fresh = mk(StackSpec::daredevil(), false);
    let dare_aged = mk(StackSpec::daredevil(), true);
    let vanilla_aged = mk(StackSpec::vanilla(), true);
    // GC raises Daredevil's own floor (device service, not queueing).
    // The margin is modest — erases spread over 128 dies — but real.
    assert!(
        dare_aged.l_avg_ms() > dare_fresh.l_avg_ms() * 1.03,
        "GC must raise the floor: {} vs {}",
        dare_aged.l_avg_ms(),
        dare_fresh.l_avg_ms()
    );
    // (The phase attribution of the GC penalty is entangled: erases slow
    // the writers, which shifts backlog between the flash and the NSQs, so
    // no single phase monotonically absorbs it — only the total is
    // asserted here.)
    // The structural win over vanilla survives ageing.
    assert!(
        dare_aged.l_avg_ms() * 2.0 < vanilla_aged.l_avg_ms(),
        "separation must still win on an aged drive: {} vs {}",
        dare_aged.l_avg_ms(),
        vanilla_aged.l_avg_ms()
    );
}
