//! Determinism guarantees: identical seeds replay identical results across
//! every stack and scenario family; different seeds genuinely differ.

use daredevil_repro::prelude::*;

fn fingerprint(out: &RunOutput) -> (u64, u64, u64, u64) {
    let l = out.summary.class("L");
    let t = out.summary.class("T");
    (
        l.ios_completed,
        l.latency.p999().as_nanos(),
        t.bytes_completed,
        out.events_processed,
    )
}

fn run_once(stack: StackSpec, seed: u64) -> RunOutput {
    let mut s = Scenario::multi_tenant_fio(stack, 2, 6, 2, MachinePreset::Small);
    s.knobs.warmup = SimDuration::from_millis(5);
    s.knobs.measure = SimDuration::from_millis(60);
    s.knobs.seed = seed;
    daredevil_repro::testbed::run(s)
}

#[test]
fn same_seed_same_result_all_stacks() {
    for stack in [
        StackSpec::vanilla(),
        StackSpec::vanilla_partitioned(4),
        StackSpec::blk_switch(),
        StackSpec::dare_base(),
        StackSpec::dare_sched(),
        StackSpec::daredevil(),
    ] {
        let a = run_once(stack.clone(), 1234);
        let b = run_once(stack.clone(), 1234);
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "{} is not deterministic",
            a.summary.stack
        );
    }
}

#[test]
fn different_seeds_differ() {
    let a = run_once(StackSpec::daredevil(), 1);
    let b = run_once(StackSpec::daredevil(), 2);
    assert_ne!(
        fingerprint(&a),
        fingerprint(&b),
        "different seeds should explore different schedules"
    );
}

#[test]
fn storms_are_deterministic_too() {
    let mk = |seed| {
        let mut s =
            Scenario::multi_tenant_fio(StackSpec::daredevil(), 2, 4, 2, MachinePreset::Small);
            s.knobs.warmup = SimDuration::from_millis(5);
            s.knobs.measure = SimDuration::from_millis(60);
            s.knobs.seed = seed;
        s.ionice_storm = Some(SimDuration::from_millis(1));
        s.migrate_storm = Some(SimDuration::from_millis(3));
        daredevil_repro::testbed::run(s)
    };
    let a = mk(7);
    let b = mk(7);
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert_eq!(a.troute_reassignments, b.troute_reassignments);
}

#[test]
fn app_workloads_are_deterministic() {
    use daredevil_repro::workload::kvsim::KvConfig;
    let mk = || {
        let mut s = Scenario::new("det-app", MachinePreset::Small, StackSpec::daredevil());
        s.tenants.push(TenantSpec {
            class_label: "app",
            ionice: IoPriorityClass::RealTime,
            core: 0,
            nsid: NamespaceId(1),
            slo: None,
            kind: TenantKind::App(AppKind::Ycsb {
                mix: YcsbMix::F,
                config: KvConfig {
                    keys: 5_000,
                    cache_blocks: 500,
                    memtable_entries: 64,
                    ..KvConfig::default()
                },
                ops: 400,
            }),
        });
        s.stop_when_apps_done = true;
        s.knobs.measure = SimDuration::from_secs(10);
        daredevil_repro::testbed::run(s)
    };
    let a = mk();
    let b = mk();
    let count = |o: &RunOutput| -> u64 { o.op_latencies.values().map(|h| h.count()).sum() };
    assert_eq!(count(&a), count(&b));
    assert_eq!(a.events_processed, b.events_processed);
}
