//! `ddsim` — run custom multi-tenant scenarios from the command line.
//!
//! ```sh
//! cargo run --release --bin ddsim -- --stack daredevil --l 4 --t 16 --cores 4
//! cargo run --release --bin ddsim -- --stack vanilla --machine ws-m --measure-ms 500
//! cargo run --release --bin ddsim -- --stack blk-switch --namespaces 8
//! cargo run --release --bin ddsim -- --list-stacks
//! ```

use daredevil_repro::blkstack::iosched::SchedKind;
use daredevil_repro::metrics::table::fmt_ms;
use daredevil_repro::metrics::SpanTable;
use daredevil_repro::prelude::*;
use daredevil_repro::simkit::{Phase, SimTime, TraceSpec, MASK_ALL};

const STACKS: &[&str] = &[
    "vanilla",
    "vanilla-partitioned",
    "mq-deadline",
    "kyber",
    "blk-switch",
    "overprov",
    "dare-base",
    "dare-sched",
    "daredevil",
    "virtio-naive",
    "virtio-sla",
];

fn stack_by_name(name: &str) -> Option<StackSpec> {
    Some(match name {
        "vanilla" => StackSpec::vanilla(),
        "vanilla-partitioned" => StackSpec::vanilla_partitioned(4),
        "mq-deadline" => StackSpec::vanilla_sched(SchedKind::MqDeadline),
        "kyber" => StackSpec::vanilla_sched(SchedKind::Kyber),
        "blk-switch" => StackSpec::blk_switch(),
        "overprov" => StackSpec::overprov(),
        "dare-base" => StackSpec::dare_base(),
        "dare-sched" => StackSpec::dare_sched(),
        "daredevil" => StackSpec::daredevil(),
        "virtio-naive" => StackSpec::virtio(StackSpec::daredevil(), false),
        "virtio-sla" => StackSpec::virtio(StackSpec::daredevil(), true),
        _ => return None,
    })
}

struct Args {
    stack: String,
    machine: MachinePreset,
    nr_l: u16,
    nr_t: u16,
    cores: u16,
    namespaces: Option<u32>,
    warmup_ms: u64,
    measure_ms: u64,
    seed: u64,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            stack: "daredevil".into(),
            machine: MachinePreset::SvM,
            nr_l: 4,
            nr_t: 8,
            cores: 4,
            namespaces: None,
            warmup_ms: 50,
            measure_ms: 800,
            seed: 42,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: ddsim [--stack NAME] [--machine sv-m|ws-m|small] [--l N] [--t N]\n\
         \x20            [--cores N] [--namespaces N] [--warmup-ms N] [--measure-ms N]\n\
         \x20            [--seed N] [--list-stacks]\n\
         stacks: {}",
        STACKS.join(", ")
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--stack" => args.stack = value(&mut i),
            "--machine" => {
                args.machine = match value(&mut i).as_str() {
                    "sv-m" => MachinePreset::SvM,
                    "ws-m" => MachinePreset::WsM,
                    "small" => MachinePreset::Small,
                    other => {
                        eprintln!("unknown machine {other}");
                        usage()
                    }
                }
            }
            "--l" => args.nr_l = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--t" => args.nr_t = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--cores" => args.cores = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--namespaces" => {
                args.namespaces = Some(value(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--warmup-ms" => args.warmup_ms = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--measure-ms" => args.measure_ms = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--list-stacks" => {
                for s in STACKS {
                    println!("{s}");
                }
                std::process::exit(0);
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other}");
                usage()
            }
        }
        i += 1;
    }
    args
}

fn main() {
    let args = parse_args();
    let Some(stack) = stack_by_name(&args.stack) else {
        eprintln!("unknown stack '{}'", args.stack);
        usage();
    };
    let mut scenario = match args.namespaces {
        Some(ns) => Scenario::multi_namespace(stack, ns, args.cores, args.machine),
        None => Scenario::multi_tenant_fio(stack, args.nr_l, args.nr_t, args.cores, args.machine),
    };
    scenario.knobs.seed = args.seed;
    scenario.knobs.warmup = SimDuration::from_millis(args.warmup_ms);
    scenario.knobs.measure = SimDuration::from_millis(args.measure_ms);
    if let Err(e) = scenario.validate() {
        eprintln!("invalid scenario: {e}");
        std::process::exit(2);
    }
    scenario.name = format!("ddsim-{}", args.stack);
    // Trace the four phase-breakdown anchors so the report below can
    // stitch per-request spans (SpanTable) into the latency phase table.
    let breakdown_mask = Phase::Submit.bit()
        | Phase::DeviceFetch.bit()
        | Phase::FlashDone.bit()
        | Phase::Complete.bit();
    scenario.knobs.trace = Some(TraceSpec {
        cap: 1 << 20,
        mask: breakdown_mask & MASK_ALL,
    });

    let out = daredevil_repro::testbed::run(scenario);
    println!("{}", out.summary.headline());
    println!();
    for class in out.summary.classes() {
        let c = out.summary.class(&class);
        println!(
            "{:>4}: n={:<8} p50={:>10}  p99={:>10}  p99.9={:>10}  {:.0} IOPS  {:.1} MB/s",
            class,
            c.ios_completed,
            fmt_ms(c.latency.p50()),
            fmt_ms(c.latency.p99()),
            fmt_ms(c.latency.p999()),
            c.iops(out.summary.window_secs()),
            c.throughput_mbps(out.summary.window_secs()),
        );
    }
    println!("\nlatency phases (avg ms: in-NSQ wait / device service / delivery):");
    let spans = SpanTable::build(&out.trace);
    let window_start = SimTime::from_millis(args.warmup_ms);
    for class in out.summary.classes() {
        let in_class = |s: &daredevil_repro::metrics::Span| {
            s.sla.name() == class && s.completed_at().is_some_and(|t| t >= window_start)
        };
        let wait = spans.segment_stats(Phase::Submit, Phase::DeviceFetch, in_class);
        if wait.count == 0 {
            continue;
        }
        println!(
            "{:>4}: {:.3} / {:.3} / {:.3}",
            class,
            wait.avg_ms(),
            spans
                .segment_stats(Phase::DeviceFetch, Phase::FlashDone, in_class)
                .avg_ms(),
            spans
                .segment_stats(Phase::FlashDone, Phase::Complete, in_class)
                .avg_ms(),
        );
    }
    if out.trace_dropped > 0 {
        println!(
            "(trace ring wrapped: {} events evicted; phase averages are partial)",
            out.trace_dropped
        );
    }
    let st = &out.stack_stats;
    println!(
        "\nstack: {} submitted, {} completed ({} remote), {} requeues, {} steering actions",
        st.submitted_rqs, st.completed_rqs, st.remote_completions, st.requeues, st.steering_actions
    );
    println!(
        "device: flash queue delay {}, events {}, T fairness (Jain) {:.3}",
        out.flash_queue_delay,
        out.events_processed,
        out.summary.jain_fairness("T"),
    );
}
