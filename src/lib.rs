//! Daredevil reproduction — facade crate.
//!
//! This crate re-exports the whole workspace under one roof so examples,
//! integration tests, and downstream users can depend on a single package:
//!
//! * [`daredevil`] — the paper's contribution: the decoupled block layer
//!   (blex/nproxy), the tenant-NQ router (troute), and the NQ regulator
//!   (nqreg);
//! * [`blkstack`] — the shared block layer and vanilla blk-mq;
//! * [`blkswitch`] — the blk-switch (OSDI '21) baseline;
//! * [`overprov`] — the FlashShare/D2FQ-style static-overprovision baseline
//!   (device WRR);
//! * [`virtio`] — the §8.1 virtio-blk guest layer (naive vs SLA-aware VQs);
//! * [`nvme`] — the simulated multi-queue NVMe SSD;
//! * [`cpu`] — the host CPU model;
//! * [`workload`] — FIO-style, YCSB/kvsim and mailserver workloads;
//! * [`testbed`] — scenarios and the deterministic event loop;
//! * [`metrics`] — histograms, series, summaries, tables;
//! * [`simkit`] — the discrete-event substrate.
//!
//! # Quick start
//!
//! ```
//! use daredevil_repro::prelude::*;
//!
//! // Compare vanilla blk-mq and Daredevil under T-pressure.
//! let mut scenario = Scenario::multi_tenant_fio(
//!     StackSpec::daredevil(),
//!     2, // L-tenants
//!     4, // T-tenants
//!     2, // cores
//!     MachinePreset::Small,
//! );
//! scenario.knobs.warmup = SimDuration::from_millis(5);
//! scenario.knobs.measure = SimDuration::from_millis(30);
//! let out = daredevil_repro::testbed::run(scenario);
//! println!("{}", out.summary.headline());
//! assert!(out.summary.class("L").ios_completed > 0);
//! ```

#![warn(missing_docs)]

pub use blkstack;
pub use blkswitch;
pub use daredevil;
pub use dd_cpu as cpu;
pub use dd_metrics as metrics;
pub use dd_nvme as nvme;
pub use dd_overprov as overprov;
pub use dd_virtio as virtio;
pub use dd_workload as workload;
pub use simkit;
pub use testbed;

/// The names most programs need.
pub mod prelude {
    pub use blkstack::{IoPriorityClass, StorageStack};
    pub use daredevil::{DaredevilConfig, DaredevilStack, Variant};
    pub use dd_metrics::{LatencyHistogram, RunSummary};
    pub use dd_nvme::{NamespaceId, NvmeConfig, NvmeDevice};
    pub use dd_workload::{FioJob, RwPattern, YcsbMix};
    pub use simkit::{SimDuration, SimTime};
    pub use testbed::scenario::{
        AppKind, MachinePreset, Scenario, StackSpec, TenantKind, TenantSpec,
    };
    pub use testbed::RunOutput;
}
